package plan

import (
	"context"
	"testing"

	"repro/internal/core"
)

// fuzzRankQuery derives a query exercising this PR's ranking additions:
// the base subspace/where shape comes from fuzzQuery with its rank tail
// cleared, then one of dp-idp, layer or an F-dominance restriction is
// attached. Restricted weights are dyadic (multiples of 1/8) so the
// oracle's vertex arithmetic is float-exact.
func fuzzRankQuery(r *fuzzReader, ds *core.Dataset) Query {
	q := fuzzQuery(r, ds)
	q.TopK, q.Rank, q.Ideal = 0, RankNone, nil
	switch r.byte() % 3 {
	case 0:
		q.TopK = 1 + int(r.byte())%6
		q.Rank = RankDPIDP
	case 1:
		q.TopK = 1 + int(r.byte())%4
		q.Rank = RankLayer
	default:
		fw := make([]float64, ds.NumTO())
		for d := range fw {
			fw[d] = float64(r.byte()%3) / 8 // ≤ 2/8 per column, ≤ 2 TO columns: Σ ≤ 1
		}
		q.FWeights = fw
		if r.byte()%2 == 0 {
			q.TopK = 1 + int(r.byte())%6 // unranked prefix over the restricted skyline
		}
	}
	return q
}

// FuzzRankAgreement is the differential harness for the pluggable
// rankings: on any byte-derived workload, the planned dp-idp and layer
// top-k must reproduce the brute-force oracle's exact sequence (scores
// are bit-identical by construction, ties break by id), and the
// F-dominance restricted skyline must match the oracle's
// vertex-decided member set — cold, through the scalar reference
// kernel, and behind a warm memo. When the shape admits the score
// index, the index advanced across a random mutation must equal a
// from-scratch rebuild, histogram by histogram. Explore further with
//
//	go test -run='^$' -fuzz=FuzzRankAgreement ./internal/plan
func FuzzRankAgreement(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 3, 2, 0, 1, 8, 1, 0, 2, 0, 3, 1, 4, 2, 5, 3, 6, 0, 7, 1})
	f.Add([]byte{0, 2, 4, 4, 0, 1, 1, 2, 2, 3, 3, 2, 12, 5, 0, 5, 1, 5, 2, 5, 0, 1, 1, 2, 2, 0, 9, 9})
	f.Add([]byte{1, 0, 16, 2, 1, 0, 3, 1, 7, 7, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		ds := fuzzDataset(r)
		if err := ds.Validate(); err != nil {
			t.Fatalf("generated invalid dataset: %v", err)
		}
		q := fuzzRankQuery(r, ds)
		want, err := Naive(ds, q)
		if err != nil {
			t.Fatalf("oracle rejected a generated query %+v: %v", q, err)
		}

		// An unranked TopK over the restricted skyline keeps a prefix in
		// algorithm-dependent emission order: check membership + size
		// against the unbounded restricted set instead of the sequence.
		prefix := len(q.FWeights) > 0 && q.TopK > 0
		var member map[int32]bool
		var fullLen int
		if prefix {
			uq := q
			uq.TopK = 0
			full, err := Naive(ds, uq)
			if err != nil {
				t.Fatal(err)
			}
			fullLen = len(full)
			member = make(map[int32]bool, len(full))
			for _, id := range full {
				member[id] = true
			}
		}

		check := func(label string, ids []int32, err error) {
			if err != nil {
				t.Fatalf("%s: %v (query %+v)", label, err, q)
			}
			if prefix {
				wantLen := q.TopK
				if fullLen < wantLen {
					wantLen = fullLen
				}
				if len(ids) != wantLen {
					t.Fatalf("%s: %d rows, want %d (query %+v)", label, len(ids), wantLen, q)
				}
				for _, id := range ids {
					if !member[id] {
						t.Fatalf("%s: row %d outside the restricted skyline (query %+v)", label, id, q)
					}
				}
				return
			}
			if q.Rank != RankNone {
				// Ranked sequences are deterministic end to end.
				if !equal32(ids, want) {
					t.Fatalf("%s: got %v want %v (query %+v, n=%d)", label, ids, want, q, len(ds.Pts))
				}
				return
			}
			if !equal32(sorted32(ids), sorted32(want)) {
				t.Fatalf("%s: got %v want %v (query %+v, n=%d)", label, sorted32(ids), sorted32(want), q, len(ds.Pts))
			}
		}

		run := func(label string, fq Query, env Env) {
			p, err := New(ds, fq, env)
			if err != nil {
				t.Fatalf("%s: New: %v (query %+v)", label, err, fq)
			}
			res, err := p.Run(context.Background(), ds, env)
			var ids []int32
			if res != nil {
				ids = res.SkylineIDs
			}
			check(label, ids, err)
		}

		env := Env{Learned: NewLearned()}
		run("auto", q, env)
		{
			fq := q
			fq.Hints.NoKernel = true
			run("nokernel", fq, env)
		}
		// Memo leg: a real MemoCache so index-eligible dp-idp shapes
		// exercise cold-build + index-served runs back to back.
		cenv := Env{Learned: NewLearned(), Cache: NewMemoCache()}
		run("cold memo", q, cenv)
		run("warm memo", q, cenv)

		// Score-index maintenance: mutate, advance the memo, and demand
		// the carried index equals a from-scratch rebuild exactly.
		if q.Rank == RankDPIDP && q.Subspace == nil && len(q.Where) == 0 {
			checkIndexAdvance(t, r, ds, q)
		}
	})
}

// checkIndexAdvance applies a byte-derived mutation to a warmed table
// and asserts the advanced score index is integer-identical to
// core.BuildScoreIndex over the new snapshot, then that the ranked
// query against the advanced cache still matches the oracle.
func checkIndexAdvance(t *testing.T, r *fuzzReader, ds *core.Dataset, q Query) {
	memo := NewMemoCache()
	env := Env{Learned: NewLearned(), Cache: memo}
	p, err := New(ds, q, env)
	if err != nil {
		t.Fatalf("index warm-up: New: %v", err)
	}
	if _, err := p.Run(context.Background(), ds, env); err != nil {
		t.Fatalf("index warm-up: %v", err)
	}
	if _, ok := memo.GetScoreIndex(); !ok {
		t.Fatalf("no score index after a full-shape dp-idp query (query %+v)", q)
	}

	n := len(ds.Pts)
	seen := map[int]bool{}
	var removes []int
	for i := int(r.byte()) % (n/2 + 1); i > 0; i-- {
		idx := int(r.byte()) % n
		if !seen[idx] {
			seen[idx] = true
			removes = append(removes, idx)
		}
	}
	var adds []core.Point
	for i := int(r.byte()) % 4; i > 0; i-- {
		p := core.Point{}
		for d := 0; d < ds.NumTO(); d++ {
			p.TO = append(p.TO, int32(r.byte())%8)
		}
		for d := 0; d < ds.NumPO(); d++ {
			p.PO = append(p.PO, int32(r.byte())%int32(ds.Domains[d].Size()))
		}
		adds = append(adds, p)
	}
	newDS, delta := mutateDS(ds, removes, adds)
	adv := memo.Advance(ds, newDS, delta)

	if ix, ok := adv.GetScoreIndex(); ok {
		newSky, err := Naive(newDS, Query{})
		if err != nil {
			t.Fatal(err)
		}
		wantIx := core.BuildScoreIndex(newDS, newSky)
		if !equal32(ix.Members(), wantIx.Members()) {
			t.Fatalf("advanced index members %v, rebuild has %v (removes %v, adds %d)",
				ix.Members(), wantIx.Members(), removes, len(adds))
		}
		for i := range wantIx.Members() {
			got, want := ix.Hist(i), wantIx.Hist(i)
			if len(got) != len(want) {
				t.Fatalf("member %d: advanced hist %v, rebuild %v", wantIx.Members()[i], got, want)
			}
			for k, c := range want {
				if got[k] != c {
					t.Fatalf("member %d: advanced hist %v, rebuild %v", wantIx.Members()[i], got, want)
				}
			}
		}
	}

	// End to end on the new snapshot, whatever the advance decided.
	want, err := Naive(newDS, q)
	if err != nil {
		t.Fatal(err)
	}
	aenv := Env{Learned: NewLearned(), Cache: adv}
	ap, err := New(newDS, q, aenv)
	if err != nil {
		t.Fatalf("post-advance: New: %v", err)
	}
	res, err := ap.Run(context.Background(), newDS, aenv)
	if err != nil {
		t.Fatalf("post-advance: %v", err)
	}
	if !equal32(res.SkylineIDs, want) {
		t.Fatalf("post-advance ranked query: got %v want %v (removes %v, adds %d)",
			res.SkylineIDs, want, removes, len(adds))
	}
}
