package plan

import (
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/poset"
)

// F-dominance restricted skylines ("flexible skyline" ND operator):
// Query.FWeights gives a per-TO-column lower bound w_d ≥ 0 on the
// scoring weight, defining the constraint family
//
//	W(w) = { v : v_d ≥ w_d on every kept TO column, Σ_kept v_d = 1 }
//
// — the monotone scoring functions f_v(p) = Σ v_d·p.TO[d] the user is
// still undecided between. Point a F-dominates b when f_v(a) ≤ f_v(b)
// for every v ∈ W and the two differ (strictly better at some v, or
// strictly preferred on some kept PO column; PO columns are compared
// exactly as under plain dominance, since the weight family scores only
// the TO columns). The restricted skyline ND is the set of rows not
// F-dominated by any other row.
//
// W(w) is a simplex with vertex set { w + (1−Σw)·e_j } over the kept
// columns j, and f_v(a) ≤ f_v(b) is linear in v, so checking the
// vertices decides the whole family — that is what makes the operator
// cheap. F-dominance is transitive and implied by plain dominance,
// which yields the two load-bearing soundness facts: ND ⊆ SKY (so the
// restriction can run as a post-stage over any skyline result, cached
// or cold), and every F-dominator of an ND-eliminated row has an
// F-dominating representative inside SKY (so eliminating among skyline
// members only — or among gathered cluster candidates after the
// coordinator's dominance merge — loses nothing).

// FVertices returns the extreme weight vectors of the constraint family
// W(weights) restricted to the kept TO columns, each in kept order:
// vertex j concentrates the undistributed mass 1−Σw on column j.
func FVertices(weights []float64, keptTO []int) [][]float64 {
	d := len(keptTO)
	base := make([]float64, d)
	var sum float64
	for j, dim := range keptTO {
		base[j] = weights[dim]
		sum += weights[dim]
	}
	free := 1 - sum
	vtx := make([][]float64, d)
	for j := range vtx {
		v := append([]float64(nil), base...)
		v[j] += free
		vtx[j] = v
	}
	return vtx
}

// FDominates reports whether a F-dominates b under the weight vectors
// vtx (each in kept order, matching the projected points) and the kept
// PO domains. Exported for the coordinator's restricted merge and the
// oracle's sampled-vector check — every tier eliminates with this one
// predicate.
func FDominates(doms []*poset.Domain, vtx [][]float64, a, b *core.Point) bool {
	strict := false
	for _, v := range vtx {
		var sa, sb float64
		for j, w := range v {
			sa += w * float64(a.TO[j])
			sb += w * float64(b.TO[j])
		}
		if sa > sb {
			return false
		}
		if sa < sb {
			strict = true
		}
	}
	for j, av := range a.PO {
		bv := b.PO[j]
		if av == bv {
			continue
		}
		if !doms[j].TPrefers(av, bv) {
			return false
		}
		strict = true
	}
	return strict
}

// FDomSurvivors returns the indexes (in input order) of the points not
// F-dominated by any other point under vtx — the restricted-skyline
// elimination, O(n²) over whatever candidate set the caller narrowed
// down to (skyline members; gathered cluster candidates).
func FDomSurvivors(doms []*poset.Domain, vtx [][]float64, pts []core.Point) []int {
	var out []int
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			if FDominates(doms, vtx, &pts[j], &pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// fweightsKey canonically names a restriction for the memo/EWMA variant
// key: the kept columns' weight bounds, exactly rendered. Appended to
// the base subspace key with restrictedKeyMark, which MemoCache.Advance
// uses to recognize (and drop) restricted entries — they are not
// incrementally maintainable.
func fweightsKey(weights []float64, keptTO []int) string {
	var b strings.Builder
	b.WriteString("fw:")
	for i, d := range keptTO {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(weights[d], 'g', -1, 64))
	}
	return b.String()
}

// restrictedKeyMark separates the restriction suffix in a memo key.
const restrictedKeyMark = "|fw:"
