package plan

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/poset"
)

// ctxCheckEvery is how many loop iterations pass between cooperative
// context checks in the executor's scan loops.
const ctxCheckEvery = 4096

// Run executes the plan on ds, records the observed cost back into
// env.Learned, and fills the Explain's observed fields. The dataset
// must use the table layout (ds.Pts[i].ID == i), which Table datasets
// always do; result IDs are row indexes of that table.
//
// Cancellation is cooperative: ctx is checked between pipeline stages
// and periodically inside the executor's own scan loops. A registered
// algorithm that is already running is not interrupted mid-run — the
// check happens before it starts and the filter/rank work after it.
func (p *Plan) Run(ctx context.Context, ds *core.Dataset, env Env) (*core.Result, error) {
	start := time.Now()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	var res *core.Result
	observedRows := 0 // rows the executor actually fed an algorithm
	switch {
	case p.cached != nil:
		// Cache routing: the snapshot's full skyline, filtered when the
		// (proved anti-monotone) predicates demand it. No index is
		// touched, so no rows are processed.
		ids := p.cached
		if p.route == RoutePostFilter {
			ids = p.filterIDs(ds, ids)
		}
		res = &core.Result{SkylineIDs: append([]int32(nil), ids...), FromCache: true}
	case p.earlyExit:
		var err error
		if res, err = p.runCursor(ctx, ds); err != nil {
			return nil, err
		}
		observedRows = p.cursorRows
	default:
		eff, err := p.effective(ctx, ds)
		if err != nil {
			return nil, err
		}
		observedRows = len(eff.Pts)
		algo := p.algo
		opt := core.Options{UseMemTree: true, NoKernel: p.Query.Hints.NoKernel}
		if p.shards > 0 {
			algo = core.Parallel(algo)
			opt.Parallelism = p.shards
		}
		algoStart := time.Now()
		if res, err = algo.Run(eff, opt); err != nil {
			return nil, err
		}
		// Feedback, with two guards. Skyline fractions are learned per
		// variant (kept-dimension key), so subspace runs feed their own
		// EWMA rather than dragging the full-dimensional estimate toward
		// ~1/n; filtered runs still feed nothing — their fraction
		// conflates selectivity with skyline density. The cost multiplier
		// corrects the *sequential* model, so parallel runs — whose
		// wall-clock is divided across cores the model knows nothing
		// about — are excluded too.
		if p.route == RouteDirect {
			env.Learned.ObserveSkyline(p.baseVariant, len(eff.Pts), len(res.SkylineIDs))
		}
		if p.shards == 0 {
			// Train the multiplier on the model's *shape* error alone:
			// re-evaluate the prior at the rows and skyline size the run
			// actually saw, and time only the algorithm itself (the
			// executor's O(table) filter/projection scan is not part of
			// the model), so a selectivity misestimate — already visible
			// as estimatedRows vs observedRows — is not folded into the
			// per-algorithm correction that full-table plans reuse.
			predicted := p.prior.modelSeconds(len(eff.Pts), len(res.SkylineIDs), len(p.keptPO))
			env.Learned.ObserveCost(p.algo.Name(), predicted, time.Since(algoStart).Seconds())
		}
		if p.route == RoutePostFilter {
			if env.Cache != nil && !p.Query.Hints.NoCache {
				env.Cache.PutFull(append([]int32(nil), res.SkylineIDs...))
			}
			res.SkylineIDs = p.filterIDs(ds, res.SkylineIDs)
		} else if p.route == RouteDirect && env.Cache != nil && !p.Query.Hints.NoCache {
			ids := append([]int32(nil), res.SkylineIDs...)
			if p.Query.Subspace == nil {
				env.Cache.PutFull(ids)
			} else {
				env.Cache.PutSubspace(p.baseVariant, ids)
			}
		}
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Restriction stage: the F-dominance restricted skyline is a subset
	// of the skyline (plain dominance implies F-dominance), so whatever
	// route produced the skyline — cached, cursor, cold — the weight
	// constraint eliminates among its members afterwards. The restricted
	// result memoises under its own weight-suffixed key; a hit skipped
	// the elimination already.
	if p.fvtx != nil && !p.cachedRestricted {
		ids, err := p.restrictIDs(ctx, ds, res.SkylineIDs)
		if err != nil {
			return nil, err
		}
		if p.route == RouteDirect && env.Cache != nil && !p.Query.Hints.NoCache {
			env.Cache.PutSubspace(p.variant, append([]int32(nil), ids...))
		}
		if p.route == RouteDirect && !res.FromCache {
			env.Learned.ObserveSkyline(p.variant, observedRows, len(ids))
		}
		res.SkylineIDs = ids
	}

	if p.Query.TopK > 0 {
		ids, err := p.rankAndTruncate(ctx, ds, env, res.SkylineIDs)
		if err != nil {
			return nil, err
		}
		res.SkylineIDs = ids
		// Keep only the emission records of rows that survived the
		// truncation. Unranked truncation keeps an emission-order
		// prefix; a ranked one keeps a scattered subset, so a prefix
		// cut would report emissions for rows not in the result.
		if len(res.Metrics.Emissions) > 0 {
			kept := make(map[int32]bool, len(ids))
			for _, id := range ids {
				kept[id] = true
			}
			out := res.Metrics.Emissions[:0]
			for _, e := range res.Metrics.Emissions {
				if kept[e.ID] {
					out = append(out, e)
				}
			}
			res.Metrics.Emissions = out
		}
	}

	p.Explain.ObservedSeconds = time.Since(start).Seconds()
	p.Explain.ObservedRows = observedRows
	p.Explain.ObservedSkyline = len(res.SkylineIDs)
	return res, nil
}

// runCursor answers an unranked top-k through the progressive sTSS
// cursor, paying only for the first K certified emissions.
func (p *Plan) runCursor(ctx context.Context, ds *core.Dataset) (*core.Result, error) {
	eff, err := p.effective(ctx, ds)
	if err != nil {
		return nil, err
	}
	p.cursorRows = len(eff.Pts)
	cur := core.NewSTSSCursor(eff, core.Options{UseMemTree: true, NoKernel: p.Query.Hints.NoKernel})
	res := &core.Result{}
	for len(res.SkylineIDs) < p.Query.TopK {
		if len(res.SkylineIDs)%256 == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		id, ok := cur.Next()
		if !ok {
			break
		}
		res.SkylineIDs = append(res.SkylineIDs, id)
	}
	res.Metrics = cur.Metrics()
	return res, nil
}

// effective materializes the dataset the algorithm runs on: predicate
// filtering (push-down route) and subspace projection, with original
// row ids preserved so results need no mapping back.
func (p *Plan) effective(ctx context.Context, ds *core.Dataset) (*core.Dataset, error) {
	project := p.Query.Subspace != nil
	filter := p.route == RoutePushdown
	if !project && !filter {
		return ds, nil
	}
	eff := &core.Dataset{Domains: keptPODomains(ds, p.keptPO)}
	if !project {
		eff.Domains = ds.Domains
	}
	for i := range ds.Pts {
		if i%ctxCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		pt := &ds.Pts[i]
		if filter && !p.matchesAll(pt) {
			continue
		}
		if !project {
			eff.Pts = append(eff.Pts, *pt)
			continue
		}
		eff.Pts = append(eff.Pts, p.projectPoint(pt))
	}
	return eff, nil
}

// matchesAll reports whether a row satisfies every predicate.
func (p *Plan) matchesAll(pt *core.Point) bool {
	return matchesAllPreds(p.Query.Where, pt)
}

// filterIDs keeps the result ids whose rows satisfy the predicates —
// the post-filter route's final pass.
func (p *Plan) filterIDs(ds *core.Dataset, ids []int32) []int32 {
	out := make([]int32, 0, len(ids))
	for _, id := range ids {
		if p.matchesAll(&ds.Pts[id]) {
			out = append(out, id)
		}
	}
	return out
}

// rankAndTruncate orders the skyline by the query's rank and keeps the
// best K. RankNone keeps the first K in emission order; everything else
// dispatches through the Ranker registry and records where the scores
// came from (index / memo / cold) in the explain output.
func (p *Plan) rankAndTruncate(ctx context.Context, ds *core.Dataset, env Env, ids []int32) ([]int32, error) {
	k := p.Query.TopK
	if p.Query.Rank == RankNone {
		if k < len(ids) {
			ids = ids[:k]
		}
		return ids, nil
	}
	r, ok := LookupRanker(string(p.Query.Rank))
	if !ok {
		return nil, fmt.Errorf("plan: unknown rank %q (have: %s)", p.Query.Rank, quotedRankerNames())
	}
	sc := p.scoreContext(ds, env)
	ranked, fromIndex, err := r.Rank(ctx, sc, ids, k)
	if err != nil {
		return nil, err
	}
	switch {
	case fromIndex:
		p.Explain.RankedFrom = "index"
		p.Explain.RouteReason = "ranked top-k scored from the score index"
	case p.cached != nil:
		p.Explain.RankedFrom = "memo"
		p.Explain.RouteReason = "ranked top-k over the memoised skyline"
	default:
		p.Explain.RankedFrom = "cold"
	}
	return ranked, nil
}

// scoreContext assembles what the ranker sees. The score index applies
// only to the full-table shape — no projection, no filter, no
// restriction — because the index is built over full-dimension
// dominance on all rows; any other shape scores cold.
func (p *Plan) scoreContext(ds *core.Dataset, env Env) *ScoreContext {
	sc := &ScoreContext{DS: ds, Query: &p.Query, KeptTO: p.keptTO, KeptPO: p.keptPO, Algo: p.algo}
	if p.Query.Subspace == nil && len(p.Query.Where) == 0 && len(p.Query.FWeights) == 0 &&
		env.Cache != nil && !p.Query.Hints.NoCache {
		if sic, ok := env.Cache.(ScoreIndexCache); ok {
			if ix, ok := sic.GetScoreIndex(); ok {
				sc.Index = ix
			}
			sc.StoreIndex = sic.PutScoreIndex
		}
	}
	return sc
}

// restrictIDs eliminates the skyline members F-dominated by another
// member under the query's weight-constraint family (see fdom.go for
// why member-only elimination is exact).
func (p *Plan) restrictIDs(ctx context.Context, ds *core.Dataset, ids []int32) ([]int32, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	pts := make([]core.Point, len(ids))
	for i, id := range ids {
		pts[i] = p.projectPoint(&ds.Pts[id])
	}
	doms := keptPODomains(ds, p.keptPO)
	keep := FDomSurvivors(doms, p.fvtx, pts)
	out := make([]int32, len(keep))
	for i, j := range keep {
		out[i] = ids[j]
	}
	return out, nil
}

type projected struct {
	id int32
	pt core.Point
}

// projectPoint maps a full-dimensional row into the kept dimensions.
func (p *Plan) projectPoint(pt *core.Point) core.Point {
	return projectInto(pt, p.keptTO, p.keptPO)
}

// keptPODomains selects the kept PO columns' domains in subspace order.
func keptPODomains(ds *core.Dataset, keptPO []int) []*poset.Domain {
	doms := make([]*poset.Domain, len(keptPO))
	for j, d := range keptPO {
		doms[j] = ds.Domains[d]
	}
	return doms
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("plan: query canceled: %w", err)
	}
	return nil
}
