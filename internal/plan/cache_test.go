package plan

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// mutateDS applies removes+adds to ds the way Table.ApplyBatch does
// (drop, renumber survivors in order, append adds) and returns the new
// dataset plus the delta.
func mutateDS(ds *core.Dataset, removes []int, adds []core.Point) (*core.Dataset, *core.Delta) {
	drop := make([]bool, len(ds.Pts))
	for _, r := range removes {
		drop[r] = true
	}
	delta := &core.Delta{OldToNew: make([]int32, len(ds.Pts)), Added: len(adds)}
	nds := &core.Dataset{Domains: ds.Domains}
	for i := range ds.Pts {
		if drop[i] {
			delta.OldToNew[i] = -1
			continue
		}
		p := ds.Pts[i]
		p.ID = int32(len(nds.Pts))
		delta.OldToNew[i] = p.ID
		nds.Pts = append(nds.Pts, p)
	}
	for _, p := range adds {
		p.ID = int32(len(nds.Pts))
		nds.Pts = append(nds.Pts, p)
	}
	return nds, delta
}

// TestMemoAdvance: a memo populated by cold runs is carried across a
// mutation; the advanced entries are flagged maintained, answer queries
// identically to a cold recompute, and the planner reports the
// maintained route.
func TestMemoAdvance(t *testing.T) {
	ds := sampleDS(t, 150)
	cache := NewMemoCache()
	env := Env{Cache: cache, Learned: NewLearned()}

	runPlan(t, ds, Query{}, env) // populate full entry
	sub := &Subspace{TO: []int{0}, PO: []int{0}}
	runPlan(t, ds, Query{Subspace: sub}, env) // populate one subspace entry

	// Remove two skyline members (forces promotions) and add rows.
	full, _, ok := cache.GetFull()
	if !ok {
		t.Fatal("full entry missing after cold run")
	}
	removes := []int{int(full[0]), int(full[len(full)-1]), 17}
	adds := []core.Point{
		{TO: []int32{1, 1}, PO: []int32{0}},   // strong add: evicts members
		{TO: []int32{60, 60}, PO: []int32{3}}, // dominated add: discarded
	}
	nds, delta := mutateDS(ds, removes, adds)
	next := cache.Advance(ds, nds, delta)

	if _, maint, ok := next.GetFull(); !ok || !maint {
		t.Fatalf("advanced full entry: ok=%v maintained=%v, want hit+maintained", ok, maint)
	}
	if _, maint, ok := next.GetSubspace(SubspaceKey(sub)); !ok || !maint {
		t.Fatalf("advanced subspace entry: ok=%v maintained=%v, want hit+maintained", ok, maint)
	}

	nenv := Env{Cache: next, Learned: NewLearned()}
	gotFull, ex := runPlan(t, nds, Query{}, nenv)
	if !ex.CacheHit || !ex.Maintained {
		t.Fatalf("post-batch full query: cacheHit=%v maintained=%v", ex.CacheHit, ex.Maintained)
	}
	wantFull, err := Naive(nds, Query{Hints: Hints{NoCache: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !equal32(sorted32(gotFull), sorted32(wantFull)) {
		t.Fatalf("maintained full skyline %v != cold %v", sorted32(gotFull), sorted32(wantFull))
	}

	gotSub, exs := runPlan(t, nds, Query{Subspace: sub}, nenv)
	if !exs.CacheHit || !exs.Maintained {
		t.Fatalf("post-batch subspace query: cacheHit=%v maintained=%v", exs.CacheHit, exs.Maintained)
	}
	wantSub, err := Naive(nds, Query{Subspace: sub})
	if err != nil {
		t.Fatal(err)
	}
	if !equal32(sorted32(gotSub), sorted32(wantSub)) {
		t.Fatalf("maintained subspace skyline %v != cold %v", sorted32(gotSub), sorted32(wantSub))
	}

	st := next.MaintStats()
	if st.Advances < 2 {
		t.Fatalf("MaintStats.Advances = %d, want >= 2 (full + subspace)", st.Advances)
	}
	// The old memo still serves the old snapshot, un-maintained.
	if _, maint, ok := cache.GetFull(); !ok || maint {
		t.Fatalf("old memo changed by Advance: ok=%v maintained=%v", ok, maint)
	}
}

// TestMemoAdvanceChurnFallback: a batch over the churn threshold drops
// the entries instead of maintaining them, and counts fallbacks.
func TestMemoAdvanceChurnFallback(t *testing.T) {
	ds := sampleDS(t, 1000)
	cache := NewMemoCache()
	env := Env{Cache: cache, Learned: NewLearned()}
	runPlan(t, ds, Query{}, env)

	removes := make([]int, 0, 200)
	for i := 0; i < 200; i++ { // 20% churn > threshold and > floor
		removes = append(removes, i)
	}
	nds, delta := mutateDS(ds, removes, nil)
	next := cache.Advance(ds, nds, delta)
	if _, _, ok := next.GetFull(); ok {
		t.Fatal("over-threshold batch should drop the full entry")
	}
	if st := next.MaintStats(); st.Fallbacks == 0 {
		t.Fatal("fallback not counted")
	}
	// The dropped entry refills cold on the next query.
	nenv := Env{Cache: next, Learned: NewLearned()}
	if _, ex := runPlan(t, nds, Query{}, nenv); ex.CacheHit {
		t.Fatal("dropped entry still reported a hit")
	}
	if _, ex := runPlan(t, nds, Query{}, nenv); !ex.CacheHit || ex.Maintained {
		t.Fatal("refilled entry should be a plain (non-maintained) hit")
	}
}

// TestMemoSubspaceLRU: the subspace half is bounded; overflow evicts
// the least-recently-used entry and counts it.
func TestMemoSubspaceLRU(t *testing.T) {
	cache := NewMemoCache()
	cache.subCap = 3
	for i := 0; i < 3; i++ {
		cache.PutSubspace(fmt.Sprintf("to:%d|po:", i), []int32{int32(i)})
	}
	// Touch entry 0 so entry 1 is the LRU victim.
	if _, _, ok := cache.GetSubspace("to:0|po:"); !ok {
		t.Fatal("entry 0 missing")
	}
	cache.PutSubspace("to:9|po:", []int32{9})
	if _, _, ok := cache.GetSubspace("to:1|po:"); ok {
		t.Fatal("LRU entry 1 survived overflow")
	}
	for _, k := range []string{"to:0|po:", "to:2|po:", "to:9|po:"} {
		if _, _, ok := cache.GetSubspace(k); !ok {
			t.Fatalf("entry %q evicted wrongly", k)
		}
	}
	if st := cache.MaintStats(); st.SubspaceEvictions != 1 {
		t.Fatalf("SubspaceEvictions = %d, want 1", st.SubspaceEvictions)
	}
}

// TestParseSubspaceKey round-trips SubspaceKey.
func TestParseSubspaceKey(t *testing.T) {
	cases := []*Subspace{
		{TO: []int{0, 2}, PO: []int{1}},
		{TO: []int{1}, PO: []int{}},
		{TO: []int{}, PO: []int{0, 1}},
	}
	for _, s := range cases {
		key := SubspaceKey(s)
		to, po, err := parseSubspaceKey(key)
		if err != nil {
			t.Fatalf("parse(%q): %v", key, err)
		}
		if len(to) != len(s.TO) || len(po) != len(s.PO) {
			t.Fatalf("parse(%q) = %v/%v", key, to, po)
		}
		for i := range to {
			if to[i] != s.TO[i] {
				t.Fatalf("parse(%q) TO = %v", key, to)
			}
		}
		for i := range po {
			if po[i] != s.PO[i] {
				t.Fatalf("parse(%q) PO = %v", key, po)
			}
		}
	}
	for _, bad := range []string{"", "full", "to:1", "to:x|po:", "to:1|po:-2"} {
		if _, _, err := parseSubspaceKey(bad); err == nil {
			t.Fatalf("parse(%q) accepted", bad)
		}
	}
}
