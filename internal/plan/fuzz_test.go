package plan

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/poset"
)

// fuzzReader decodes a fuzz input byte stream; exhausted input reads as
// zeros, so every byte slice is a valid (if degenerate) workload.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// fuzzDataset derives a small mixed TO/PO dataset in table layout
// (ID == index): 1–2 TO columns, 0–2 PO columns with 2–5-value
// forward-edge DAGs, up to 24 heavily colliding rows.
func fuzzDataset(r *fuzzReader) *core.Dataset {
	nTO := 1 + int(r.byte())%2
	nPO := int(r.byte()) % 3
	ds := &core.Dataset{}
	for d := 0; d < nPO; d++ {
		size := 2 + int(r.byte())%4
		dag := poset.NewDAG(size)
		edges := int(r.byte()) % 8
		for e := 0; e < edges; e++ {
			a := int(r.byte()) % size
			b := int(r.byte()) % size
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			dag.MustEdge(a, b)
		}
		dom, err := poset.NewDomain(dag)
		if err != nil {
			panic(err) // forward edges only: cycles are impossible
		}
		ds.Domains = append(ds.Domains, dom)
	}
	n := 1 + int(r.byte())%24
	for i := 0; i < n; i++ {
		p := core.Point{ID: int32(i)}
		for d := 0; d < nTO; d++ {
			p.TO = append(p.TO, int32(r.byte())%8)
		}
		for d := 0; d < nPO; d++ {
			p.PO = append(p.PO, int32(r.byte())%int32(ds.Domains[d].Size()))
		}
		ds.Pts = append(ds.Pts, p)
	}
	return ds
}

// fuzzQuery derives a logical query over the dataset's shape. Every
// derived query passes Validate by construction.
func fuzzQuery(r *fuzzReader, ds *core.Dataset) Query {
	q := Query{}
	nTO, nPO := ds.NumTO(), ds.NumPO()

	if r.byte()%2 == 0 { // subspace
		s := &Subspace{}
		for d := 0; d < nTO; d++ {
			if r.byte()%2 == 0 {
				s.TO = append(s.TO, d)
			}
		}
		if len(s.TO) == 0 {
			s.TO = []int{int(r.byte()) % nTO}
		}
		for d := 0; d < nPO; d++ {
			if r.byte()%2 == 0 {
				s.PO = append(s.PO, d)
			}
		}
		q.Subspace = s
	}

	preds := int(r.byte()) % 3
	for i := 0; i < preds; i++ {
		if nPO > 0 && r.byte()%2 == 0 {
			dim := int(r.byte()) % nPO
			size := ds.Domains[dim].Size()
			var in []int32
			for v := 0; v < size; v++ {
				if r.byte()%2 == 0 {
					in = append(in, int32(v))
				}
			}
			if len(in) == 0 {
				in = []int32{int32(r.byte()) % int32(size)}
			}
			q.Where = append(q.Where, Predicate{Kind: POIn, Dim: dim, In: in})
			continue
		}
		pr := Predicate{Kind: TORange, Dim: int(r.byte()) % nTO}
		switch r.byte() % 3 {
		case 0:
			pr.HasHi, pr.Hi = true, int64(r.byte()%8)
		case 1:
			pr.HasLo, pr.Lo = true, int64(r.byte()%8)
		default:
			pr.HasLo, pr.Lo = true, int64(r.byte()%4)
			pr.HasHi, pr.Hi = true, pr.Lo+int64(r.byte()%5)
		}
		q.Where = append(q.Where, pr)
	}

	switch r.byte() % 4 {
	case 1:
		q.TopK = 1 + int(r.byte())%6
	case 2:
		q.TopK = 1 + int(r.byte())%6
		q.Rank = RankDomCount
	case 3:
		q.TopK = 1 + int(r.byte())%6
		q.Rank = RankIdeal
		if r.byte()%2 == 0 {
			q.Ideal = make([]int64, nTO)
			for d := range q.Ideal {
				q.Ideal[d] = int64(r.byte() % 8)
			}
		}
	}
	return q
}

// FuzzPlanAgreement is the planner's differential harness: on any
// byte-derived workload and query, the auto-planned execution and every
// registered algorithm forced through the same plan — plus the forced
// push-down and (when provable) post-filter routes, cold and behind a
// warm full-skyline cache — must return exactly the brute-force
// oracle's rows. Runs its seed corpus under plain `go test`; explore
// further with
//
//	go test -run='^$' -fuzz=FuzzPlanAgreement ./internal/plan
func FuzzPlanAgreement(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 3, 2, 0, 1, 8, 1, 0, 2, 0, 3, 1, 4, 2, 5, 3, 6, 0, 7, 1})
	f.Add([]byte{0, 2, 4, 4, 0, 1, 1, 2, 2, 3, 3, 2, 12, 5, 0, 5, 1, 5, 2, 5, 0, 1, 1, 2, 2, 0, 9, 9})
	f.Add([]byte{1, 0, 16, 2, 1, 0, 3, 1, 7, 7, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		ds := fuzzDataset(r)
		if err := ds.Validate(); err != nil {
			t.Fatalf("generated invalid dataset: %v", err)
		}
		q := fuzzQuery(r, ds)
		want, err := Naive(ds, q)
		if err != nil {
			t.Fatalf("oracle rejected a generated query %+v: %v", q, err)
		}
		wantSorted := sorted32(want)

		// The emission-order contract of unranked top-k is algorithm-
		// dependent: check membership + size instead of the exact set.
		unranked := q.TopK > 0 && q.Rank == RankNone
		fullSky, err := Naive(ds, Query{Subspace: q.Subspace, Where: q.Where})
		if err != nil {
			t.Fatal(err)
		}
		member := make(map[int32]bool, len(fullSky))
		for _, id := range fullSky {
			member[id] = true
		}

		check := func(label string, ids []int32, err error, allowReject bool) {
			if err != nil {
				if allowReject {
					return
				}
				t.Fatalf("%s: %v (query %+v)", label, err, q)
			}
			if unranked {
				wantLen := q.TopK
				if len(fullSky) < wantLen {
					wantLen = len(fullSky)
				}
				if len(ids) != wantLen {
					t.Fatalf("%s: %d rows, want %d (query %+v)", label, len(ids), wantLen, q)
				}
				for _, id := range ids {
					if !member[id] {
						t.Fatalf("%s: row %d outside the skyline (query %+v)", label, id, q)
					}
				}
				return
			}
			if !equal32(sorted32(ids), wantSorted) {
				t.Fatalf("%s: got %v want %v (query %+v, n=%d)", label, sorted32(ids), wantSorted, q, len(ds.Pts))
			}
		}

		run := func(label string, fq Query, env Env, allowReject bool) {
			p, err := New(ds, fq, env)
			if err != nil {
				t.Fatalf("%s: New: %v (query %+v)", label, err, fq)
			}
			res, err := p.Run(context.Background(), ds, env)
			var ids []int32
			if res != nil {
				ids = res.SkylineIDs
			}
			check(label, ids, err, allowReject)

			// Streamed leg: the same plan delivered through RunStream must
			// produce the same rows, and the emitted sequence must equal
			// the final result order.
			sp, err := New(ds, fq, env)
			if err != nil {
				t.Fatalf("%s stream: New: %v (query %+v)", label, err, fq)
			}
			var emitted []int32
			sres, serr := sp.RunStream(context.Background(), ds, env, func(r StreamRow) error {
				emitted = append(emitted, r.ID)
				return nil
			})
			var sids []int32
			if sres != nil {
				sids = sres.SkylineIDs
			}
			check(label+" streamed", sids, serr, allowReject)
			if serr == nil && !equal32(emitted, sids) {
				t.Fatalf("%s streamed: emissions %v, result %v (query %+v)", label, emitted, sids, fq)
			}
		}

		env := Env{Learned: NewLearned()}
		run("auto", q, env, false)
		{
			// Kernel ablation: the scalar/interval reference path must
			// plan and answer identically.
			fq := q
			fq.Hints.NoKernel = true
			run("nokernel", fq, env, false)
		}
		for _, a := range core.Algorithms() {
			fq := q
			fq.Hints.Algorithm = a.Name()
			effPO := ds.NumPO()
			if q.Subspace != nil {
				effPO = len(q.Subspace.PO)
			}
			toOnlyReject := !a.Capabilities().POCapable && effPO > 0
			run("forced "+a.Name(), fq, env, toOnlyReject)
		}
		if len(q.Where) > 0 {
			fq := q
			fq.Hints.Route = RoutePushdown
			run("forced pushdown", fq, env, false)
			if am, _ := allAntiMonotone(ds, q); am && q.Subspace == nil {
				fq.Hints.Route = RoutePostFilter
				run("forced postfilter cold", fq, env, false)
			}
		}
		// Cache routing: warm the full skyline, then re-run the query so
		// eligible plans route through the cache.
		if q.Subspace == nil {
			cenv := Env{Learned: NewLearned(), Cache: &memCache{}}
			p, err := New(ds, Query{}, cenv)
			if err != nil {
				t.Fatalf("cache warm-up: New: %v", err)
			}
			if _, err := p.Run(context.Background(), ds, cenv); err != nil {
				t.Fatalf("cache warm-up: %v", err)
			}
			run("cached", q, cenv, false)
		}
	})
}
