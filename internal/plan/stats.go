package plan

import (
	"math"
	"sort"
	"sync"

	"repro/internal/core"
)

// statsSample bounds the rows examined for distinct counts and the
// correlation sign; min/max always see every row.
const statsSample = 4096

// statsRefreshEvery is how many incremental Advance steps may pass
// before the sampled statistics (distinct, correlation) are recomputed
// from scratch.
const statsRefreshEvery = 16

// ColStats summarises one totally ordered column. The JSON tags are the
// GET /tables/{t}/stats wire contract.
type ColStats struct {
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Distinct is the number of distinct values seen, saturating at
	// statsSample (an exact count below it, a floor above).
	Distinct int `json:"distinct"`
}

// POStats summarises one partially ordered column.
type POStats struct {
	// Distinct is the number of domain values actually used by rows.
	Distinct int `json:"distinct"`
	// DomainSize is the column's full domain size.
	DomainSize int `json:"domainSize"`
}

// Stats are the planner's per-table statistics: exact row count and
// TO min/max (maintained across batches), plus sampled distinct counts
// and a correlation sign refreshed periodically. Instances are
// immutable once built — Advance returns a fresh value — so snapshots
// can share them across goroutines.
type Stats struct {
	Rows int        `json:"rows"`
	TO   []ColStats `json:"to"`
	PO   []POStats  `json:"po,omitempty"`
	// CorrSign is the mean pairwise Pearson correlation over the
	// sampled TO columns: near -1 anti-correlated (large skylines),
	// near +1 correlated (tiny skylines).
	CorrSign float64 `json:"corrSign"`
	// batches counts Advance steps since the last full Analyze, driving
	// the sampled-statistics refresh policy.
	batches int
}

// Analyze computes table statistics in one pass over the rows plus a
// strided sample for distinct counts and the correlation sign.
func Analyze(ds *core.Dataset) *Stats {
	s := &Stats{Rows: len(ds.Pts)}
	nTO := ds.NumTO()
	s.TO = make([]ColStats, nTO)
	for d := range s.TO {
		s.TO[d] = ColStats{Min: math.MaxInt64, Max: math.MinInt64}
	}
	s.PO = make([]POStats, ds.NumPO())
	for d := range s.PO {
		s.PO[d].DomainSize = ds.Domains[d].Size()
	}
	for i := range ds.Pts {
		p := &ds.Pts[i]
		for d, v := range p.TO {
			if int64(v) < s.TO[d].Min {
				s.TO[d].Min = int64(v)
			}
			if int64(v) > s.TO[d].Max {
				s.TO[d].Max = int64(v)
			}
		}
	}
	if s.Rows == 0 {
		for d := range s.TO {
			s.TO[d] = ColStats{}
		}
		return s
	}
	s.resample(ds)
	return s
}

// resample recomputes the sampled statistics (distinct counts, PO usage,
// correlation sign) over a deterministic strided sample.
func (s *Stats) resample(ds *core.Dataset) {
	n := len(ds.Pts)
	stride := 1
	if n > statsSample {
		stride = n / statsSample
	}
	nTO := len(s.TO)
	distinct := make([]map[int64]struct{}, nTO)
	for d := range distinct {
		distinct[d] = make(map[int64]struct{})
	}
	poSeen := make([]map[int32]struct{}, len(s.PO))
	for d := range poSeen {
		poSeen[d] = make(map[int32]struct{})
	}
	var sample []*core.Point
	for i := 0; i < n; i += stride {
		p := &ds.Pts[i]
		sample = append(sample, p)
		for d, v := range p.TO {
			if len(distinct[d]) < statsSample {
				distinct[d][int64(v)] = struct{}{}
			}
		}
		for d, v := range p.PO {
			poSeen[d][v] = struct{}{}
		}
	}
	for d := range s.TO {
		s.TO[d].Distinct = len(distinct[d])
	}
	for d := range s.PO {
		s.PO[d].Distinct = len(poSeen[d])
	}
	s.CorrSign = corrSign(sample, nTO)
	s.batches = 0
}

// corrSign is the mean pairwise Pearson correlation across the TO
// columns of the sample.
func corrSign(sample []*core.Point, nTO int) float64 {
	if nTO < 2 || len(sample) < 3 {
		return 0
	}
	mean := make([]float64, nTO)
	for _, p := range sample {
		for d, v := range p.TO {
			mean[d] += float64(v)
		}
	}
	for d := range mean {
		mean[d] /= float64(len(sample))
	}
	var total float64
	pairs := 0
	for a := 0; a < nTO; a++ {
		for b := a + 1; b < nTO; b++ {
			var cov, va, vb float64
			for _, p := range sample {
				da := float64(p.TO[a]) - mean[a]
				db := float64(p.TO[b]) - mean[b]
				cov += da * db
				va += da * da
				vb += db * db
			}
			if va > 0 && vb > 0 {
				total += cov / math.Sqrt(va*vb)
			}
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// Advance derives the statistics of newDS, produced from oldDS by a
// batch that removed the rows marked -1 in oldToNew and appended the
// last `added` rows. The step is incremental: appended rows widen
// min/max in O(batch); a removal can only invalidate a bound when the
// removed value sits exactly on it, which triggers a full re-Analyze,
// as does the periodic sampled-statistics refresh. The receiver is not
// modified (it may be serving concurrent planners).
func (s *Stats) Advance(oldDS, newDS *core.Dataset, oldToNew []int32, added int) *Stats {
	if s == nil || len(s.TO) != newDS.NumTO() || len(s.PO) != newDS.NumPO() {
		return Analyze(newDS)
	}
	// An empty table's stats carry zeroed (not sentinel) bounds that
	// only-widening updates would wrongly inherit.
	if s.Rows == 0 {
		return Analyze(newDS)
	}
	if s.batches+1 >= statsRefreshEvery {
		return Analyze(newDS)
	}
	for oldRow, newRow := range oldToNew {
		if newRow != -1 {
			continue
		}
		p := &oldDS.Pts[oldRow]
		for d, v := range p.TO {
			if int64(v) <= s.TO[d].Min || int64(v) >= s.TO[d].Max {
				return Analyze(newDS)
			}
		}
	}
	next := &Stats{
		Rows:     len(newDS.Pts),
		TO:       append([]ColStats(nil), s.TO...),
		PO:       append([]POStats(nil), s.PO...),
		CorrSign: s.CorrSign,
		batches:  s.batches + 1,
	}
	for i := len(newDS.Pts) - added; i < len(newDS.Pts); i++ {
		p := &newDS.Pts[i]
		for d, v := range p.TO {
			if int64(v) < next.TO[d].Min {
				next.TO[d].Min = int64(v)
			}
			if int64(v) > next.TO[d].Max {
				next.TO[d].Max = int64(v)
			}
		}
	}
	if next.Rows == 0 {
		return Analyze(newDS)
	}
	return next
}

// ewma is an exponentially weighted moving average with a warm-up mean.
type ewma struct {
	v float64
	n int64
}

const ewmaAlpha = 0.3

func (e *ewma) observe(x float64) {
	e.n++
	if e.n == 1 {
		e.v = x
		return
	}
	e.v = (1-ewmaAlpha)*e.v + ewmaAlpha*x
}

// FullVariant is the variant key of full-dimensional queries — the key
// ObserveSkyline and SkylineFrac use when no subspace is involved.
const FullVariant = "full"

// Learned is the feedback half of the statistics: per-variant skyline
// fractions and per-algorithm cost-model corrections observed from past
// runs. One Learned is shared across a table's snapshots (it describes
// the table, not one version) and is safe for concurrent use.
//
// Skyline fractions are kept per *variant* — one EWMA per kept-
// dimension set (FullVariant for full-dimensional queries) — because a
// 2-dim subspace skyline and the full skyline of the same table can
// differ by orders of magnitude; a single global EWMA under a mixed
// workload drags every estimate toward whichever variant ran last.
type Learned struct {
	mu      sync.Mutex
	skyFrac map[string]*ewma // variant key -> skyline-fraction EWMA
	algo    map[string]*ewma
}

// NewLearned returns an empty feedback store.
func NewLearned() *Learned {
	return &Learned{skyFrac: make(map[string]*ewma), algo: make(map[string]*ewma)}
}

// ObserveSkyline records a completed skyline computation of the given
// variant (a kept-dimension key; FullVariant for full-dimensional
// queries) over n rows yielding m skyline rows.
func (l *Learned) ObserveSkyline(variant string, n, m int) {
	if l == nil || n <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.skyFrac[variant]
	if e == nil {
		e = &ewma{}
		l.skyFrac[variant] = e
	}
	e.observe(float64(m) / float64(n))
}

// SkylineFrac returns the observed skyline fraction EWMA of the given
// variant; ok is false before the variant's first observation.
func (l *Learned) SkylineFrac(variant string) (frac float64, ok bool) {
	if l == nil {
		return 0, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e := l.skyFrac[variant]; e != nil && e.n > 0 {
		return e.v, true
	}
	return 0, false
}

// ObserveCost records a run of algo whose static model predicted
// `predicted` seconds and which actually took `actual`, updating the
// algorithm's correction multiplier.
func (l *Learned) ObserveCost(algo string, predicted, actual float64) {
	if l == nil || predicted <= 0 || actual < 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.algo[algo]
	if e == nil {
		e = &ewma{}
		l.algo[algo] = e
	}
	e.observe(actual / predicted)
}

// CostMultiplier returns the observed/predicted correction for algo
// (1 before any observation).
func (l *Learned) CostMultiplier(algo string) float64 {
	if l == nil {
		return 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e := l.algo[algo]; e != nil && e.n > 0 {
		return e.v
	}
	return 1
}

// AlgoCost is one persisted cost-correction entry.
type AlgoCost struct {
	Name string  `json:"name"`
	Mult float64 `json:"mult"`
	N    int64   `json:"n"`
}

// VariantFrac is one per-variant skyline-fraction entry of the portable
// form.
type VariantFrac struct {
	Key  string  `json:"key"`
	Frac float64 `json:"frac"`
	N    int64   `json:"n"`
}

// LearnedState is the portable form of Learned, as persisted in store
// snapshots and served by /tables/{t}/stats. SkyFrac/SkyFracN carry the
// FullVariant EWMA — the storage snapshot format persists only that one
// (the format predates per-variant fractions; other variants are
// relearned after recovery) — while Variants lists every variant,
// sorted by key, for JSON consumers. Algos are sorted by name so the
// binary encoding is canonical.
type LearnedState struct {
	SkyFrac  float64       `json:"skyFrac"`
	SkyFracN int64         `json:"skyFracN"`
	Variants []VariantFrac `json:"variants,omitempty"`
	Algos    []AlgoCost    `json:"algos,omitempty"`
}

// Export snapshots the feedback store.
func (l *Learned) Export() LearnedState {
	if l == nil {
		return LearnedState{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var st LearnedState
	if e := l.skyFrac[FullVariant]; e != nil {
		st.SkyFrac, st.SkyFracN = e.v, e.n
	}
	for key, e := range l.skyFrac {
		if e.n > 0 {
			st.Variants = append(st.Variants, VariantFrac{Key: key, Frac: e.v, N: e.n})
		}
	}
	sort.Slice(st.Variants, func(i, j int) bool { return st.Variants[i].Key < st.Variants[j].Key })
	for name, e := range l.algo {
		if e.n > 0 {
			st.Algos = append(st.Algos, AlgoCost{Name: name, Mult: e.v, N: e.n})
		}
	}
	sort.Slice(st.Algos, func(i, j int) bool { return st.Algos[i].Name < st.Algos[j].Name })
	return st
}

// ImportLearned rebuilds a feedback store from its portable form.
func ImportLearned(st LearnedState) *Learned {
	l := NewLearned()
	if st.SkyFracN > 0 {
		l.skyFrac[FullVariant] = &ewma{v: st.SkyFrac, n: st.SkyFracN}
	}
	for _, v := range st.Variants {
		l.skyFrac[v.Key] = &ewma{v: v.Frac, n: v.N}
	}
	for _, a := range st.Algos {
		l.algo[a.Name] = &ewma{v: a.Mult, n: a.N}
	}
	return l
}

// MergeStats combines per-partition statistics into statistics of the
// union of the partitions' rows — the cluster coordinator's view over
// its shards. Bounds union, distinct counts take the maximum (a floor:
// value sets may overlap arbitrarily), and the correlation sign is the
// row-weighted mean. Partitions with zero rows are skipped (their
// zeroed bounds describe no rows). Returns nil when no partition
// carries rows or the shapes disagree.
func MergeStats(parts ...*Stats) *Stats {
	var out *Stats
	for _, p := range parts {
		if p == nil || p.Rows == 0 {
			continue
		}
		if out == nil {
			out = &Stats{
				Rows:     p.Rows,
				TO:       append([]ColStats(nil), p.TO...),
				PO:       append([]POStats(nil), p.PO...),
				CorrSign: p.CorrSign * float64(p.Rows),
			}
			continue
		}
		if len(p.TO) != len(out.TO) || len(p.PO) != len(out.PO) {
			return nil
		}
		for d, c := range p.TO {
			if c.Min < out.TO[d].Min {
				out.TO[d].Min = c.Min
			}
			if c.Max > out.TO[d].Max {
				out.TO[d].Max = c.Max
			}
			if c.Distinct > out.TO[d].Distinct {
				out.TO[d].Distinct = c.Distinct
			}
		}
		for d, c := range p.PO {
			if c.Distinct > out.PO[d].Distinct {
				out.PO[d].Distinct = c.Distinct
			}
		}
		out.CorrSign += p.CorrSign * float64(p.Rows)
		out.Rows += p.Rows
	}
	if out != nil {
		out.CorrSign /= float64(out.Rows)
	}
	return out
}
