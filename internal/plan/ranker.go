package plan

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/poset"
)

// Ranker is one registered top-k ranking method. The executor, the
// brute-force oracle, the streaming path and the cluster coordinator
// all dispatch through this registry — a new ranking registers itself
// here (like core.Algorithm implementations) and every tier picks it up
// without a new switch arm.
//
// Rank orders the skyline ids of the running query and returns the
// best k. A ranker may return rows beyond the input ids when its
// semantics demand it (RankLayer's k is a depth bound: it returns every
// row of skyline layers 1..k, of which the input skyline is layer 1).
// fromIndex reports that the scores were served from a maintained score
// index rather than computed against the table.
//
// OracleRank is the ranker's brute-force reference semantics, used by
// Naive and the differential/fuzz harnesses; it must be independent of
// Rank's implementation strategy.
//
// Optional capabilities, discovered by interface assertion:
//
//   - PartialScorer: per-shard partial scores + coordinator combine,
//     for distributed ranking where scores aggregate over shard-local
//     scans (dominance counts, dp-idp histograms).
//   - WireScorer: coordinator-local scoring of gathered candidate rows,
//     for scores computable from the candidate values alone (ideal
//     distance).
//   - UnionRanker: the coordinator gathers every shard's local result
//     without dominance elimination and the ranker orders the union
//     (skyline layers).
//   - StreamBounder: a sound lower bound on every future progressive-
//     cursor emission's score, enabling ranked streaming with early
//     termination.
//   - IdealConsumer: the ranker consumes Query.Ideal.
//   - RankCoster: adds the ranking stage's cost-model term to the
//     planner's estimate.
type Ranker interface {
	Name() string
	Rank(ctx context.Context, sc *ScoreContext, ids []int32, k int) (ranked []int32, fromIndex bool, err error)
	OracleRank(oc *OracleContext, sky []int32, k int) []int32
}

// ScoreContext is what a Ranker's executor-side Rank sees: the table
// dataset (table layout, ds.Pts[i].ID == i), the query, the resolved
// kept dimensions, and — when the query shape is index-eligible — the
// snapshot's maintained score index plus a callback to persist a
// freshly built one.
type ScoreContext struct {
	DS     *core.Dataset
	Query  *Query
	KeptTO []int
	KeptPO []int
	// Index is the table's maintained dp-idp score index, nil when
	// absent or when the query shape (subspace/filter/restriction,
	// NoCache) makes it inapplicable.
	Index *core.ScoreIndex
	// StoreIndex persists a cold-built index on the snapshot's cache;
	// nil when the shape is not index-eligible.
	StoreIndex func(*core.ScoreIndex)
	// Algo is the plan's cost-chosen skyline algorithm; rankers that
	// peel residual skylines (layer depth) reuse it rather than
	// re-deriving a choice. Nil falls back to the paper's default.
	Algo core.Algorithm
}

// OracleContext is what OracleRank sees: the query, kept dimensions,
// the kept PO domains, and R — the predicate-filtered rows projected
// onto the kept dimensions, with original table ids.
type OracleContext struct {
	Query  *Query
	KeptTO []int
	KeptPO []int
	Doms   []*poset.Domain
	Rows   []core.Point
}

// WireRow is one gathered cluster candidate as a WireScorer sees it:
// the full-width TO values off the wire plus the kept PO value ids
// (projected, in kept order) resolved against the coordinator's merged
// domains.
type WireRow struct {
	TO []int64
	PO []int32
}

// WireContext is the coordinator-side scoring context: the query, the
// kept dimensions, and the kept PO domains of the merged table schema.
type WireContext struct {
	Query    *Query
	KeptTO   []int
	KeptPO   []int
	Doms     []*poset.Domain
	NoKernel bool
}

// KHist is the wire form of one candidate's k-histogram: parallel
// (k, count) pairs with k ascending.
type KHist struct {
	Ks     []int32
	Counts []int64
}

// Partials is one shard's contribution to a distributed ranking:
// Counts for count-additive scores (dominance counts), Hists for
// histogram-additive ones (dp-idp). Each is parallel to the candidate
// list; a ranker fills the representation it combines.
type Partials struct {
	Counts []int64
	Hists  []KHist
}

// PartialScorer is the distributed-aggregation capability: Partials
// scores the candidate rows against one shard's local table, and
// CombinePartials folds every shard's result into final scores
// (ascending = better, matching the shared rank sort).
type PartialScorer interface {
	Partials(ctx context.Context, ds *core.Dataset, q Query, cands []core.Point) (Partials, error)
	CombinePartials(shards []Partials, n int) ([]float64, error)
}

// WireScorer scores gathered candidates from their values alone, with
// no shard round-trip.
type WireScorer interface {
	WireScores(wc *WireContext, rows []WireRow) []float64
}

// UnionRanker ranks the un-eliminated union of every shard's local
// result: scores (ascending = better) plus a keep mask for rows the
// ranking excludes entirely.
type UnionRanker interface {
	RankUnion(wc *WireContext, pts []core.Point, k int) (scores []float64, keep []bool)
}

// StreamBounder yields a per-row score function plus a slack s such
// that key − s never exceeds any future emission's score, where key is
// the progressive cursor's non-decreasing heap bound — the sound
// early-stop condition of the score-threshold streaming path. ok=false
// declines (e.g. the bound is only sound for a specific query shape).
type StreamBounder interface {
	StreamScorer(sc *ScoreContext) (score func(pt *core.Point) float64, slack int64, ok bool)
}

// IdealConsumer marks rankers that consume Query.Ideal; Validate
// rejects an ideal point sent to any other ranking.
type IdealConsumer interface{ ConsumesIdeal() }

// RankCoster adds the ranking stage's own cost-model term (seconds, for
// n table rows, m estimated skyline rows and top-k k) to the planner's
// estimate. Rankings cheap relative to the skyline itself omit it.
type RankCoster interface {
	RankCostSeconds(n, m, k int) float64
}

var (
	rankerMu  sync.RWMutex
	rankerReg = map[string]Ranker{}
)

// RegisterRanker adds a ranking to the registry under its Name,
// case-insensitively. It panics on an empty or duplicate name —
// registration happens in init functions, where a clash is a
// programming error.
func RegisterRanker(r Ranker) {
	name := canonicalRankName(r.Name())
	if name == "" {
		panic("plan: RegisterRanker with empty name")
	}
	rankerMu.Lock()
	defer rankerMu.Unlock()
	if _, dup := rankerReg[name]; dup {
		panic(fmt.Sprintf("plan: RegisterRanker called twice for %q", name))
	}
	rankerReg[name] = r
}

// LookupRanker finds a registered ranking by name, case-insensitively.
func LookupRanker(name string) (Ranker, bool) {
	rankerMu.RLock()
	defer rankerMu.RUnlock()
	r, ok := rankerReg[canonicalRankName(name)]
	return r, ok
}

// RankerNames returns the registered ranking names, sorted.
func RankerNames() []string {
	rankerMu.RLock()
	defer rankerMu.RUnlock()
	names := make([]string, 0, len(rankerReg))
	for name := range rankerReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Rankers returns the registered rankings, sorted by name.
func Rankers() []Ranker {
	names := RankerNames()
	rankerMu.RLock()
	defer rankerMu.RUnlock()
	out := make([]Ranker, 0, len(names))
	for _, name := range names {
		out = append(out, rankerReg[name])
	}
	return out
}

func canonicalRankName(name string) string { return strings.ToLower(name) }

// quotedRankerNames renders the registry for error messages.
func quotedRankerNames() string {
	names := RankerNames()
	for i, n := range names {
		names[i] = fmt.Sprintf("%q", n)
	}
	return strings.Join(names, ", ")
}

// RankPartials evaluates one shard's partial scores for a distributed
// ranking — the serving layer's /domcount handler dispatches here.
func RankPartials(ctx context.Context, ds *core.Dataset, q Query, rank string, cands []core.Point) (Partials, error) {
	r, ok := LookupRanker(rank)
	if !ok {
		return Partials{}, fmt.Errorf("plan: unknown rank %q (have: %s)", rank, quotedRankerNames())
	}
	ps, ok := r.(PartialScorer)
	if !ok {
		return Partials{}, fmt.Errorf("plan: rank %q has no per-shard partial scores", rank)
	}
	return ps.Partials(ctx, ds, q, cands)
}

func init() {
	RegisterRanker(domcountRanker{})
	RegisterRanker(idealRanker{})
}

// domcountRanker is RankDomCount: skyline rows ordered by the number of
// rows of R they dominate in the kept dimensions, descending.
type domcountRanker struct{}

func (domcountRanker) Name() string { return string(RankDomCount) }

func (domcountRanker) Rank(ctx context.Context, sc *ScoreContext, ids []int32, k int) ([]int32, bool, error) {
	counts, err := domCountScores(ctx, sc, ids)
	if err != nil {
		return nil, false, err
	}
	scores := make(map[int32]float64, len(ids))
	// Negated so the shared ascending sort ranks higher counts first.
	for id, c := range counts {
		scores[id] = -float64(c)
	}
	return sortByScore(ids, scores, k), false, nil
}

func (domcountRanker) OracleRank(oc *OracleContext, sky []int32, k int) []int32 {
	rows := oc.Rows
	byID := make(map[int32]*core.Point, len(rows))
	for i := range rows {
		byID[rows[i].ID] = &rows[i]
	}
	counts := make(map[int32]float64, len(sky))
	for _, id := range sky {
		s := byID[id]
		var c float64
		for i := range rows {
			if rows[i].ID != id && core.DominatesUnder(oc.Doms, s, &rows[i]) {
				c++
			}
		}
		counts[id] = -c // ascending sort ranks bigger counts first
	}
	return sortByScore(sky, counts, k)
}

// Partials delegates to the exact per-shard dominance-count scan the
// coordinator has always scattered; CombinePartials sums and negates.
func (domcountRanker) Partials(ctx context.Context, ds *core.Dataset, q Query, cands []core.Point) (Partials, error) {
	counts, err := DomCounts(ctx, ds, q, cands)
	if err != nil {
		return Partials{}, err
	}
	return Partials{Counts: counts}, nil
}

func (domcountRanker) CombinePartials(shards []Partials, n int) ([]float64, error) {
	scores := make([]float64, n)
	for _, p := range shards {
		if len(p.Counts) != n {
			return nil, fmt.Errorf("shard returned %d domcounts for %d candidates", len(p.Counts), n)
		}
		for i, c := range p.Counts {
			scores[i] -= float64(c)
		}
	}
	return scores, nil
}

// domCountScores counts, per skyline row, the rows of R (the predicate-
// filtered table) it dominates in the kept dimensions. O(|skyline|·|R|)
// with the exact dominance oracle.
func domCountScores(ctx context.Context, sc *ScoreContext, ids []int32) (map[int32]int, error) {
	ds := sc.DS
	doms := keptPODomains(ds, sc.KeptPO)
	counts := make(map[int32]int, len(ids))
	sky := make([]projected, len(ids))
	for i, id := range ids {
		sky[i] = projected{id: id, pt: projectInto(&ds.Pts[id], sc.KeptTO, sc.KeptPO)}
	}
	for i := range ds.Pts {
		if i%ctxCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		row := &ds.Pts[i]
		if len(sc.Query.Where) > 0 && !matchesAllPreds(sc.Query.Where, row) {
			continue
		}
		rp := projectInto(row, sc.KeptTO, sc.KeptPO)
		for j := range sky {
			if sky[j].id == row.ID {
				continue
			}
			if core.DominatesUnder(doms, &sky[j].pt, &rp) {
				counts[sky[j].id]++
			}
		}
	}
	return counts, nil
}

// idealRanker is RankIdeal: skyline rows ordered by L1 distance to an
// ideal point over the kept TO columns (the dTSS fully-dynamic |v − q|
// transform) plus the preference-DAG depth of each kept PO value,
// ascending.
type idealRanker struct{}

func (idealRanker) Name() string { return string(RankIdeal) }

func (idealRanker) ConsumesIdeal() {}

func (idealRanker) Rank(ctx context.Context, sc *ScoreContext, ids []int32, k int) ([]int32, bool, error) {
	depths := idealDepths(sc.DS, sc.KeptPO)
	scores := make(map[int32]float64, len(ids))
	for _, id := range ids {
		scores[id] = idealScore(sc.Query, sc.KeptTO, sc.KeptPO, &sc.DS.Pts[id], depths)
	}
	return sortByScore(ids, scores, k), false, nil
}

func (idealRanker) OracleRank(oc *OracleContext, sky []int32, k int) []int32 {
	q := oc.Query
	rows := oc.Rows
	scores := make(map[int32]float64, len(sky))
	byID := make(map[int32]*core.Point, len(rows))
	for i := range rows {
		byID[rows[i].ID] = &rows[i]
	}
	for _, id := range sky {
		s := byID[id]
		var sc float64
		for j, d := range oc.KeptTO {
			var ideal int64
			if q.Ideal != nil {
				ideal = q.Ideal[d]
			}
			diff := int64(s.TO[j]) - ideal
			if diff < 0 {
				diff = -diff
			}
			sc += float64(diff)
		}
		for j := range oc.KeptPO {
			dom := oc.Doms[j]
			for w := int32(0); int(w) < dom.Size(); w++ {
				if dom.TPrefers(w, s.PO[j]) {
					sc++
				}
			}
		}
		scores[id] = sc
	}
	return sortByScore(sky, scores, k)
}

// WireScores ranks gathered cluster candidates coordinator-locally:
// the score needs only the candidate's own values and the merged
// domains, no shard round-trip.
func (idealRanker) WireScores(wc *WireContext, rows []WireRow) []float64 {
	depths := make([][]int32, len(wc.KeptPO))
	for j := range wc.KeptPO {
		dom := wc.Doms[j]
		col := make([]int32, dom.Size())
		for v := int32(0); int(v) < dom.Size(); v++ {
			for w := int32(0); int(w) < dom.Size(); w++ {
				if dom.TPrefers(w, v) {
					col[v]++
				}
			}
		}
		depths[j] = col
	}
	scores := make([]float64, len(rows))
	for i := range rows {
		var s float64
		for _, d := range wc.KeptTO {
			var ref int64
			if wc.Query.Ideal != nil {
				ref = wc.Query.Ideal[d]
			}
			diff := rows[i].TO[d] - ref
			if diff < 0 {
				diff = -diff
			}
			s += float64(diff)
		}
		for j := range wc.KeptPO {
			s += float64(depths[j][rows[i].PO[j]])
		}
		scores[i] = s
	}
	return scores
}

// StreamScorer is the sound streaming bound of the origin-ideal
// ranking: the cursor's heap bound is Σ kept TO + Σ topological
// ordinal, an ordinal never undershoots its value's depth, so
// key − Σ(|domain|−1) ≤ score for every future emission. Off-origin
// ideal points break the bound, so the capability declines them.
func (idealRanker) StreamScorer(sc *ScoreContext) (func(pt *core.Point) float64, int64, bool) {
	if sc.Query.Ideal != nil {
		return nil, 0, false
	}
	depths := idealDepths(sc.DS, sc.KeptPO)
	var slack int64
	for _, d := range sc.KeptPO {
		slack += int64(sc.DS.Domains[d].Size() - 1)
	}
	q, keptTO, keptPO := sc.Query, sc.KeptTO, sc.KeptPO
	return func(pt *core.Point) float64 {
		return idealScore(q, keptTO, keptPO, pt, depths)
	}, slack, true
}

// idealDepths precomputes, per kept PO column, each value's depth: the
// number of values t-preferred to it (0 for DAG tops).
func idealDepths(ds *core.Dataset, keptPO []int) [][]int32 {
	depths := make([][]int32, len(keptPO))
	for j, d := range keptPO {
		dom := ds.Domains[d]
		col := make([]int32, dom.Size())
		for v := int32(0); int(v) < dom.Size(); v++ {
			for w := int32(0); int(w) < dom.Size(); w++ {
				if dom.TPrefers(w, v) {
					col[v]++
				}
			}
		}
		depths[j] = col
	}
	return depths
}

// idealScore is the RankIdeal score of a (full-dimensional) row: L1
// distance to the ideal point over the kept TO columns plus the
// preference-DAG depth of each kept PO value. Smaller is better.
func idealScore(q *Query, keptTO, keptPO []int, pt *core.Point, depths [][]int32) float64 {
	var s float64
	for _, d := range keptTO {
		var ref int64
		if q.Ideal != nil {
			ref = q.Ideal[d]
		}
		diff := int64(pt.TO[d]) - ref
		if diff < 0 {
			diff = -diff
		}
		s += float64(diff)
	}
	for j, d := range keptPO {
		s += float64(depths[j][pt.PO[d]])
	}
	return s
}
