package plan

import (
	"context"
	"testing"

	"repro/internal/core"
)

// fuzzPoint derives one row matching the dataset's shape.
func fuzzPoint(r *fuzzReader, ds *core.Dataset) core.Point {
	p := core.Point{}
	for d := 0; d < ds.NumTO(); d++ {
		p.TO = append(p.TO, int32(r.byte())%8)
	}
	for d := 0; d < ds.NumPO(); d++ {
		p.PO = append(p.PO, int32(r.byte())%int32(ds.Domains[d].Size()))
	}
	return p
}

// FuzzMaintainAgreement is the maintenance differential harness: over a
// byte-derived initial dataset and a random sequence of add / remove /
// mixed batches — removals biased toward current skyline members, so
// member-removal promotion recomputes are exercised — the memo advanced
// across every delta must hold exactly the cold-recompute skyline (set
// equality), for the full entry and a subspace entry alike, and the
// planner must answer identically through the advanced cache. Runs its
// seed corpus under plain `go test`; explore further with
//
//	go test -run='^$' -fuzz=FuzzMaintainAgreement ./internal/plan
func FuzzMaintainAgreement(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 3, 2, 0, 1, 8, 1, 0, 2, 0, 3, 1, 4, 2, 5, 3, 6, 0, 7, 1, 0, 2, 1, 3})
	f.Add([]byte{0, 2, 4, 4, 0, 1, 1, 2, 2, 3, 3, 2, 12, 5, 0, 5, 1, 5, 2, 5, 0, 1, 1, 2, 2, 0, 9, 9, 3, 0, 1, 0, 1})
	f.Add([]byte{1, 0, 16, 2, 1, 0, 3, 1, 7, 7, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 2, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		ds := fuzzDataset(r)
		if err := ds.Validate(); err != nil {
			t.Fatalf("generated invalid dataset: %v", err)
		}

		memo := NewMemoCache()
		runQ := func(ds *core.Dataset, q Query) []int32 {
			env := Env{Learned: NewLearned(), Cache: memo}
			p, err := New(ds, q, env)
			if err != nil {
				t.Fatalf("New(%+v): %v", q, err)
			}
			res, err := p.Run(context.Background(), ds, env)
			if err != nil {
				t.Fatalf("Run(%+v): %v", q, err)
			}
			return res.SkylineIDs
		}

		// Warm the memo: the full entry, plus one subspace entry when the
		// shape admits a projection.
		runQ(ds, Query{})
		var sub *Subspace
		if ds.NumTO() > 1 || ds.NumPO() > 0 {
			s := &Subspace{}
			for d := 0; d < ds.NumTO(); d++ {
				if r.byte()%2 == 0 {
					s.TO = append(s.TO, d)
				}
			}
			if len(s.TO) == 0 {
				s.TO = []int{0}
			}
			for d := 0; d < ds.NumPO(); d++ {
				if r.byte()%2 == 0 {
					s.PO = append(s.PO, d)
				}
			}
			sub = s
			runQ(ds, Query{Subspace: sub})
		}

		steps := 1 + int(r.byte())%4
		for step := 0; step < steps; step++ {
			var removes []int
			var adds []core.Point
			switch r.byte() % 3 {
			case 0: // removals biased toward members → promotions
				for _, id := range core.NaiveSkylineUnder(ds.Domains, ds.Pts) {
					if r.byte()%2 == 0 {
						removes = append(removes, int(id))
					}
				}
			case 1: // adds only
				na := 1 + int(r.byte())%5
				for i := 0; i < na; i++ {
					adds = append(adds, fuzzPoint(r, ds))
				}
			default: // mixed
				nr := int(r.byte()) % 4
				for i := 0; i < nr && len(ds.Pts) > 0; i++ {
					removes = append(removes, int(r.byte())%len(ds.Pts))
				}
				adds = append(adds, fuzzPoint(r, ds))
			}
			nds, delta := mutateDS(ds, removes, adds)
			memo = memo.Advance(ds, nds, delta)
			ds = nds
			if len(ds.Pts) == 0 {
				// A dataset's dimensionality is derived from its rows, so a
				// fully emptied table ends the sequence: verify the full
				// entry advanced to the empty skyline and stop.
				if ids, _, ok := memo.GetFull(); ok && len(ids) != 0 {
					t.Fatalf("step %d: emptied table but maintained skyline %v", step, ids)
				}
				return
			}

			// Maintained full entry ≡ cold recompute (set equality). An
			// absent entry is a legitimate churn fallback; the planner leg
			// below refills it cold either way.
			want := sorted32(core.NaiveSkylineUnder(ds.Domains, ds.Pts))
			if ids, maint, ok := memo.GetFull(); ok {
				if !maint {
					t.Fatalf("step %d: advanced full entry not flagged maintained", step)
				}
				if !equal32(sorted32(ids), want) {
					t.Fatalf("step %d: maintained full %v != cold %v", step, sorted32(ids), want)
				}
			}
			if got := runQ(ds, Query{}); !equal32(sorted32(got), want) {
				t.Fatalf("step %d: planner answer %v != cold %v", step, sorted32(got), want)
			}

			if sub == nil {
				continue
			}
			wantSub, err := Naive(ds, Query{Subspace: sub})
			if err != nil {
				t.Fatal(err)
			}
			if ids, maint, ok := memo.GetSubspace(SubspaceKey(sub)); ok {
				if step == 0 && !maint {
					// First advance must have carried the warmed entry or
					// dropped it; a non-maintained entry can only appear via a
					// later cold refill.
					t.Fatalf("step %d: advanced subspace entry not flagged maintained", step)
				}
				if !equal32(sorted32(ids), sorted32(wantSub)) {
					t.Fatalf("step %d: maintained subspace %v != cold %v", step, sorted32(ids), sorted32(wantSub))
				}
			}
			if got := runQ(ds, Query{Subspace: sub}); !equal32(sorted32(got), sorted32(wantSub)) {
				t.Fatalf("step %d: planner subspace answer %v != cold %v", step, sorted32(got), sorted32(wantSub))
			}
		}
	})
}
