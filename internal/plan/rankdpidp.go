package plan

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/poset"
)

func init() {
	RegisterRanker(dpidpRanker{})
	RegisterRanker(layerRanker{})
}

// dpidpRanker is RankDPIDP — the dominance-potential / inverse-
// dominance-partition score: each row t of R dominated by exactly k
// skyline members contributes 1/k to each of those k members, so a
// member scores high by "explaining" rows few other members cover.
// Members order descending by score (ascending after negation, matching
// the shared rank sort).
//
// Scores are carried as integer k-histograms everywhere (executor,
// score index, oracle, per-shard partials) and materialized by one
// shared ascending-k summation (core.DPIDPScoreFromHist), so the
// index-backed, cold-computed and cluster-combined floats are
// bit-identical.
type dpidpRanker struct{}

func (dpidpRanker) Name() string { return string(RankDPIDP) }

func (dpidpRanker) Rank(ctx context.Context, sc *ScoreContext, ids []int32, k int) ([]int32, bool, error) {
	if sc.Index != nil {
		if scores, ok := indexScores(sc.Index, ids); ok {
			return sortByScore(ids, scores, k), true, nil
		}
		// A member miss means the index describes a different skyline
		// than the one being ranked — fall through to the cold scan
		// rather than serve wrong scores.
	}
	hists, err := dpidpHists(ctx, sc.DS, sc.Query, sc.KeptTO, sc.KeptPO, ids)
	if err != nil {
		return nil, false, err
	}
	scores := make(map[int32]float64, len(ids))
	for _, id := range ids {
		scores[id] = -core.DPIDPScoreFromHist(hists[id])
	}
	if sc.StoreIndex != nil {
		sc.StoreIndex(core.NewScoreIndex(ids, hists))
	}
	return sortByScore(ids, scores, k), false, nil
}

func (dpidpRanker) OracleRank(oc *OracleContext, sky []int32, k int) []int32 {
	rows := oc.Rows
	byID := make(map[int32]*core.Point, len(rows))
	for i := range rows {
		byID[rows[i].ID] = &rows[i]
	}
	// Per row of R: how many skyline members dominate it, and which.
	hists := make(map[int32]map[int32]int64, len(sky))
	var dom []int32
	for i := range rows {
		dom = dom[:0]
		for _, id := range sky {
			if id == rows[i].ID {
				continue
			}
			if core.DominatesUnder(oc.Doms, byID[id], &rows[i]) {
				dom = append(dom, id)
			}
		}
		if len(dom) == 0 {
			continue
		}
		kk := int32(len(dom))
		for _, id := range dom {
			h := hists[id]
			if h == nil {
				h = map[int32]int64{}
				hists[id] = h
			}
			h[kk]++
		}
	}
	scores := make(map[int32]float64, len(sky))
	for _, id := range sky {
		scores[id] = -core.DPIDPScoreFromHist(hists[id])
	}
	return sortByScore(sky, scores, k)
}

// Partials scores the gathered candidates against this shard's local
// rows: per candidate, the k-histogram of local rows it dominates,
// where k counts dominators among all candidates (the global skyline) —
// additive across shards because each local row contributes to exactly
// one shard's histograms with the same global k.
func (dpidpRanker) Partials(ctx context.Context, ds *core.Dataset, q Query, cands []core.Point) (Partials, error) {
	proj, keptTO, keptPO, doms, err := projectCandidates(ds, q, cands)
	if err != nil {
		return Partials{}, err
	}
	hists := make([]map[int32]int64, len(cands))
	var dom []int
	for i := range ds.Pts {
		if i%ctxCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return Partials{}, err
			}
		}
		row := &ds.Pts[i]
		if !matchesAllPreds(q.Where, row) {
			continue
		}
		rp := projectInto(row, keptTO, keptPO)
		dom = dom[:0]
		for j := range proj {
			if core.DominatesUnder(doms, &proj[j], &rp) {
				dom = append(dom, j)
			}
		}
		if len(dom) == 0 {
			continue
		}
		kk := int32(len(dom))
		for _, j := range dom {
			if hists[j] == nil {
				hists[j] = map[int32]int64{}
			}
			hists[j][kk]++
		}
	}
	out := Partials{Hists: make([]KHist, len(cands))}
	for j, h := range hists {
		out.Hists[j] = histToWire(h)
	}
	return out, nil
}

func (dpidpRanker) CombinePartials(shards []Partials, n int) ([]float64, error) {
	merged := make([]map[int32]int64, n)
	for i := range merged {
		merged[i] = map[int32]int64{}
	}
	for _, p := range shards {
		if len(p.Hists) != n {
			return nil, fmt.Errorf("shard returned %d dp-idp histograms for %d candidates", len(p.Hists), n)
		}
		for i, h := range p.Hists {
			if len(h.Ks) != len(h.Counts) {
				return nil, fmt.Errorf("shard histogram %d has %d ks but %d counts", i, len(h.Ks), len(h.Counts))
			}
			for x, k := range h.Ks {
				merged[i][k] += h.Counts[x]
			}
		}
	}
	scores := make([]float64, n)
	for i, h := range merged {
		scores[i] = -core.DPIDPScoreFromHist(h)
	}
	return scores, nil
}

// RankCostSeconds: one O(n·m) dominance scan, like the domcount scan
// but with dominator-set collection.
func (dpidpRanker) RankCostSeconds(n, m, k int) float64 {
	return 3e-9 * float64(n) * float64(m)
}

// indexScores serves the ranked ids from the maintained index; a single
// missing member declines the whole lookup.
func indexScores(ix *core.ScoreIndex, ids []int32) (map[int32]float64, bool) {
	sm := ix.ScoreMap()
	scores := make(map[int32]float64, len(ids))
	for _, id := range ids {
		s, ok := sm[id]
		if !ok {
			return nil, false
		}
		scores[id] = -s
	}
	return scores, true
}

// dpidpHists computes each member's k-histogram against R (the
// predicate-filtered table in the kept dimensions). For the
// index-eligible full-table shape it produces exactly what
// core.BuildScoreIndex would — same integers, same member set — so the
// result doubles as a freshly built index.
func dpidpHists(ctx context.Context, ds *core.Dataset, q *Query, keptTO, keptPO []int, ids []int32) (map[int32]map[int32]int64, error) {
	doms := keptPODomains(ds, keptPO)
	sky := make([]projected, len(ids))
	for i, id := range ids {
		sky[i] = projected{id: id, pt: projectInto(&ds.Pts[id], keptTO, keptPO)}
	}
	hists := make(map[int32]map[int32]int64, len(ids))
	var dom []int
	for i := range ds.Pts {
		if i%ctxCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		row := &ds.Pts[i]
		if len(q.Where) > 0 && !matchesAllPreds(q.Where, row) {
			continue
		}
		rp := projectInto(row, keptTO, keptPO)
		dom = dom[:0]
		for j := range sky {
			if sky[j].id == row.ID {
				continue
			}
			if core.DominatesUnder(doms, &sky[j].pt, &rp) {
				dom = append(dom, j)
			}
		}
		if len(dom) == 0 {
			continue
		}
		kk := int32(len(dom))
		for _, j := range dom {
			h := hists[sky[j].id]
			if h == nil {
				h = map[int32]int64{}
				hists[sky[j].id] = h
			}
			h[kk]++
		}
	}
	return hists, nil
}

// histToWire flattens a k-histogram into ascending-k parallel arrays.
func histToWire(h map[int32]int64) KHist {
	if len(h) == 0 {
		return KHist{}
	}
	ks := make([]int32, 0, len(h))
	for k := range h {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	out := KHist{Ks: ks, Counts: make([]int64, len(ks))}
	for i, k := range ks {
		out.Counts[i] = h[k]
	}
	return out
}

// layerRanker is RankLayer: iterated-skyline depth. TopK is a depth
// bound, not a row count — the result is every row of R in skyline
// layers 1..K (layer 1 = the skyline, layer i = the skyline of what
// remains), ordered by (layer, id). Depth-bound semantics make the
// distributed merge exact: a row's global layer never exceeds K unless
// its local layer already does, so the union of shard-local layer-≤K
// results contains every chain needed to re-derive global layers.
type layerRanker struct{}

func (layerRanker) Name() string { return string(RankLayer) }

func (layerRanker) Rank(ctx context.Context, sc *ScoreContext, ids []int32, k int) ([]int32, bool, error) {
	rows, err := filteredProjectedRows(ctx, sc.DS, sc.Query, sc.KeptTO, sc.KeptPO)
	if err != nil {
		return nil, false, err
	}
	doms := keptPODomains(sc.DS, sc.KeptPO)
	layers, err := peelFrom(ctx, doms, rows, ids, k, sc)
	if err != nil {
		return nil, false, err
	}
	return layerOrder(rows, layers), false, nil
}

// peelFrom assigns layers 1..k over rows. Layer 1 is the skyline the
// executor already computed (memo-served when the table is warm);
// deeper layers peel the residual with the plan's cost-chosen
// algorithm — the same elimination a cold query would run, minus the
// re-plan and table rebuild a client peeling by hand pays per layer.
// The scalar reference path (NoKernel) stays on core.LayersUnder for
// the differential harnesses.
func peelFrom(ctx context.Context, doms []*poset.Domain, rows []core.Point, sky []int32, k int, sc *ScoreContext) ([]int32, error) {
	if sc.Query.Hints.NoKernel {
		return core.LayersUnder(doms, rows, k, true), nil
	}
	layers := make([]int32, len(rows))
	seed := make(map[int32]bool, len(sky))
	for _, id := range sky {
		seed[id] = true
	}
	alive := make([]int, 0, len(rows)-len(sky))
	for i := range rows {
		if seed[rows[i].ID] {
			layers[i] = 1
		} else {
			alive = append(alive, i)
		}
	}
	algo := sc.Algo
	if algo == nil {
		algo, _ = core.Lookup("stss")
	}
	for layer := int32(2); int(layer) <= k && len(alive) > 0; layer++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		sub := &core.Dataset{Domains: doms, Pts: make([]core.Point, len(alive))}
		for j, i := range alive {
			sub.Pts[j] = rows[i]
			sub.Pts[j].ID = int32(j)
		}
		res, err := algo.Run(sub, core.Options{})
		if err != nil {
			return nil, err
		}
		inLayer := make([]bool, len(alive))
		for _, id := range res.SkylineIDs {
			layers[alive[id]] = layer
			inLayer[id] = true
		}
		next := alive[:0]
		for j, i := range alive {
			if !inLayer[j] {
				next = append(next, i)
			}
		}
		alive = next
	}
	return layers, nil
}

func (layerRanker) OracleRank(oc *OracleContext, sky []int32, k int) []int32 {
	// Iterated naive skyline — independent of the kernel peeling.
	alive := append([]core.Point(nil), oc.Rows...)
	var out []int32
	for layer := 1; layer <= k && len(alive) > 0; layer++ {
		ids := core.NaiveSkylineUnder(oc.Doms, alive)
		sorted := append([]int32(nil), ids...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		out = append(out, sorted...)
		inLayer := make(map[int32]bool, len(ids))
		for _, id := range ids {
			inLayer[id] = true
		}
		next := alive[:0]
		for i := range alive {
			if !inLayer[alive[i].ID] {
				next = append(next, alive[i])
			}
		}
		alive = next
	}
	return out
}

// RankUnion re-layers the un-eliminated union of shard-local layer
// results on the coordinator; rows deeper than k are dropped.
func (layerRanker) RankUnion(wc *WireContext, pts []core.Point, k int) ([]float64, []bool) {
	layers := core.LayersUnder(wc.Doms, pts, k, wc.NoKernel)
	scores := make([]float64, len(pts))
	keep := make([]bool, len(pts))
	for i, l := range layers {
		scores[i] = float64(l)
		keep[i] = l >= 1
	}
	return scores, keep
}

// RankCostSeconds: up to k kernel peels over n rows.
func (layerRanker) RankCostSeconds(n, m, k int) float64 {
	peels := k
	if peels > 8 {
		peels = 8
	}
	return 2e-9 * float64(n) * float64(m) * float64(peels)
}

// layerOrder collects rows of layers 1..bound in (layer, id) order.
func layerOrder(rows []core.Point, layers []int32) []int32 {
	type lid struct {
		layer int32
		id    int32
	}
	var out []lid
	for i, l := range layers {
		if l >= 1 {
			out = append(out, lid{layer: l, id: rows[i].ID})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].layer != out[j].layer {
			return out[i].layer < out[j].layer
		}
		return out[i].id < out[j].id
	})
	ids := make([]int32, len(out))
	for i, e := range out {
		ids[i] = e.id
	}
	return ids
}

// filteredProjectedRows materializes R: the predicate-filtered table
// projected onto the kept dimensions, original ids preserved.
func filteredProjectedRows(ctx context.Context, ds *core.Dataset, q *Query, keptTO, keptPO []int) ([]core.Point, error) {
	var rows []core.Point
	for i := range ds.Pts {
		if i%ctxCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		pt := &ds.Pts[i]
		if len(q.Where) > 0 && !matchesAllPreds(q.Where, pt) {
			continue
		}
		rows = append(rows, projectInto(pt, keptTO, keptPO))
	}
	return rows, nil
}
