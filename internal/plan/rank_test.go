package plan

import (
	"sort"
	"strings"
	"testing"
)

// TestRankerRegistry pins the open registry's contract: the four
// built-in rankings are present, names resolve case-insensitively, and
// an unknown name misses rather than panicking.
func TestRankerRegistry(t *testing.T) {
	names := RankerNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("RankerNames not sorted: %v", names)
	}
	for _, want := range []string{"domcount", "dpidp", "ideal", "layer"} {
		i := sort.SearchStrings(names, want)
		if i == len(names) || names[i] != want {
			t.Fatalf("RankerNames missing %q: %v", want, names)
		}
	}
	for _, name := range []string{"dpidp", "DPIDP", "DpIdp"} {
		r, ok := LookupRanker(name)
		if !ok {
			t.Fatalf("LookupRanker(%q) missed", name)
		}
		if r.Name() != "dpidp" {
			t.Fatalf("LookupRanker(%q).Name() = %q", name, r.Name())
		}
	}
	if _, ok := LookupRanker("pagerank"); ok {
		t.Fatal("LookupRanker resolved an unregistered name")
	}
}

// TestValidateRankAndFWeights pins the validation surface the new
// rankings added: every rejection names the offending field with
// enough context to fix the query.
func TestValidateRankAndFWeights(t *testing.T) {
	ds := sampleDS(t, 40) // 2 TO columns, 1 PO column
	sizes := make([]int, len(ds.Domains))
	for d, dom := range ds.Domains {
		sizes[d] = dom.Size()
	}
	cases := []struct {
		name string
		q    Query
		want string // substring of the error, "" = must validate
	}{
		{"dpidp ok", Query{TopK: 3, Rank: RankDPIDP}, ""},
		{"layer ok", Query{TopK: 2, Rank: RankLayer}, ""},
		{"fweights ok", Query{FWeights: []float64{0.25, 0.5}}, ""},
		{"fweights with unranked topk", Query{TopK: 2, FWeights: []float64{0.25, 0.5}}, ""},
		{"unknown rank", Query{TopK: 3, Rank: Rank("pagerank")}, `unknown rank "pagerank"`},
		{"rank without topk", Query{Rank: RankDPIDP}, `rank "dpidp" without TopK`},
		{"fweights with rank", Query{TopK: 3, Rank: RankLayer, FWeights: []float64{0.25, 0.5}},
			`fweights cannot combine with rank "layer"`},
		{"fweights arity", Query{FWeights: []float64{0.25}}, "fweights has 1 values, table has 2 TO columns"},
		{"fweights negative", Query{FWeights: []float64{-0.1, 0.5}}, "weights must be finite and >= 0"},
		{"fweights sum over 1", Query{FWeights: []float64{0.75, 0.75}}, "exceeds 1"},
		{"ideal point without ideal rank", Query{TopK: 3, Rank: RankDPIDP, Ideal: []int64{0, 0}},
			`ideal point without rank "ideal"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.q.Validate(ds.NumTO(), ds.NumPO(), sizes)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate(%+v) = %v, want ok", tc.q, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate(%+v) = %v, want error containing %q", tc.q, err, tc.want)
			}
		})
	}
}

// TestRankedFromTransitions pins the explain split this PR adds: the
// first index-eligible dp-idp query scores cold and seeds the index,
// the second reads it; a ranking without a partial-score index over a
// warm memo reports the memoised skyline as its source.
func TestRankedFromTransitions(t *testing.T) {
	ds := sampleDS(t, 60)
	env := Env{Learned: NewLearned(), Cache: NewMemoCache()}

	q := Query{TopK: 3, Rank: RankDPIDP}
	first, ex1 := runPlan(t, ds, q, env)
	if ex1.RankedFrom != "cold" {
		t.Fatalf("first dp-idp run: RankedFrom = %q, want cold", ex1.RankedFrom)
	}
	second, ex2 := runPlan(t, ds, q, env)
	if ex2.RankedFrom != "index" {
		t.Fatalf("second dp-idp run: RankedFrom = %q, want index", ex2.RankedFrom)
	}
	if ex2.RouteReason != "ranked top-k scored from the score index" {
		t.Fatalf("second dp-idp run: RouteReason = %q", ex2.RouteReason)
	}
	if !equal32(first, second) {
		t.Fatalf("index-served top-k %v differs from cold %v", second, first)
	}

	// domcount has no score index; over the now-warm full-skyline memo
	// it reports the memo as its source.
	_, ex3 := runPlan(t, ds, Query{TopK: 3, Rank: RankDomCount}, env)
	if ex3.RankedFrom != "memo" {
		t.Fatalf("domcount over warm memo: RankedFrom = %q, want memo", ex3.RankedFrom)
	}
	if ex3.RouteReason != "ranked top-k over the memoised skyline" {
		t.Fatalf("domcount over warm memo: RouteReason = %q", ex3.RouteReason)
	}

	// Cold env: no cache at all, scores recomputed from the table.
	_, ex4 := runPlan(t, ds, Query{TopK: 3, Rank: RankDomCount}, Env{Learned: NewLearned()})
	if ex4.RankedFrom != "cold" {
		t.Fatalf("domcount without cache: RankedFrom = %q, want cold", ex4.RankedFrom)
	}
}

// TestRestrictedMemoVariant pins the restricted skyline's cache
// behavior: its weight-suffixed variant memoises and hits, and after a
// mutation batch the entry dies with the snapshot (restricted sets are
// not incrementally maintainable) while the advanced cache still
// answers correctly from the maintained base skyline.
func TestRestrictedMemoVariant(t *testing.T) {
	ds := sampleDS(t, 60)
	memo := NewMemoCache()
	env := Env{Learned: NewLearned(), Cache: memo}
	q := Query{FWeights: []float64{0.5, 0.25}}

	want, err := Naive(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	cold, ex1 := runPlan(t, ds, q, env)
	if ex1.CacheHit {
		t.Fatalf("first restricted run reported a cache hit: %+v", ex1)
	}
	if !equal32(sorted32(cold), sorted32(want)) {
		t.Fatalf("restricted skyline %v, oracle %v", sorted32(cold), sorted32(want))
	}
	hit, ex2 := runPlan(t, ds, q, env)
	if !ex2.CacheHit || !strings.Contains(ex2.RouteReason, "restricted skyline cached") {
		t.Fatalf("second restricted run: CacheHit=%v RouteReason=%q", ex2.CacheHit, ex2.RouteReason)
	}
	if !equal32(sorted32(hit), sorted32(want)) {
		t.Fatalf("cached restricted skyline %v, oracle %v", sorted32(hit), sorted32(want))
	}

	// Mutate: the base skyline is maintained across the batch, the
	// restricted entry is dropped (not a fallback — by design), and the
	// re-run recomputes the restriction from the maintained base.
	newDS, delta := mutateDS(ds, []int{1, 7, 20}, nil)
	adv := memo.Advance(ds, newDS, delta)
	aenv := Env{Learned: NewLearned(), Cache: adv}
	newWant, err := Naive(newDS, q)
	if err != nil {
		t.Fatal(err)
	}
	after, ex3 := runPlan(t, newDS, q, aenv)
	if ex3.CacheHit && strings.Contains(ex3.RouteReason, "restricted skyline cached") {
		t.Fatalf("restricted entry survived the batch: %+v", ex3)
	}
	if !equal32(sorted32(after), sorted32(newWant)) {
		t.Fatalf("post-batch restricted skyline %v, oracle %v", sorted32(after), sorted32(newWant))
	}
}
