// Package plan is the skyline query planner and executor: it turns a
// logical query — full, subspace, constrained, or top-k skyline, in any
// combination — into a physical plan (algorithm, parallelism, predicate
// placement, cache routing) chosen by a statistics-driven cost model,
// runs it, and feeds the observed cost back into the statistics.
//
// Query semantics, in evaluation order:
//
//  1. R := the rows satisfying every Where predicate (all of them, over
//     the table's full dimensionality). No predicates → R is the table.
//  2. S := the skyline of R projected onto the Subspace dimensions
//     (dominance is tested on the kept dimensions only; nil Subspace
//     keeps everything). Rows whose projections tie are mutually
//     non-dominating, so all of them belong to S — the same duplicate
//     semantics as the full skyline.
//  3. TopK > 0 ranks S by Rank and keeps the best K. RankNone keeps
//     the first K in the algorithm's emission order instead (cheap with
//     a progressive algorithm: the run stops after K emissions).
//
// Result IDs are always row indexes of the original table.
//
// Predicate placement: step 1 before step 2 ("push-down") is the
// definition and always sound. The planner may instead compute the full
// skyline first and filter it afterwards ("post-filter") — profitable
// when the full skyline is already cached — but that is only equivalent
// when every predicate is anti-monotone under dominance: whenever a row
// satisfies the predicate, so does every row dominating it. Then any
// dominator knocked out by the filter is represented by a surviving
// dominator, and σ(skyline(T)) = skyline(σ(T)). The planner proves
// anti-monotonicity per predicate (see antiMonotone) and never picks
// post-filter without the proof.
package plan

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// PredicateKind selects which field set of a Predicate applies.
type PredicateKind int

const (
	// TORange constrains a totally ordered column to an inclusive
	// range; HasLo/HasHi gate each bound.
	TORange PredicateKind = iota
	// POIn constrains a partially ordered column to a set of value ids.
	POIn
)

// Predicate constrains one column of the table.
type Predicate struct {
	Kind PredicateKind
	// Dim is the column index within its kind (TO column index for
	// TORange, PO column index for POIn).
	Dim int
	// HasLo/HasHi gate the inclusive TORange bounds: absent bounds are
	// unbounded, so a pure upper-bound predicate stays anti-monotone.
	HasLo, HasHi bool
	Lo, Hi       int64
	// In lists the allowed value ids of a POIn predicate.
	In []int32
}

// matches reports whether row p satisfies the predicate.
func (pr *Predicate) matches(p *core.Point) bool {
	switch pr.Kind {
	case TORange:
		v := int64(p.TO[pr.Dim])
		if pr.HasLo && v < pr.Lo {
			return false
		}
		if pr.HasHi && v > pr.Hi {
			return false
		}
		return true
	case POIn:
		v := p.PO[pr.Dim]
		for _, a := range pr.In {
			if a == v {
				return true
			}
		}
		return false
	}
	return false
}

// Subspace names the dimensions dominance is tested on: indexes into
// the table's TO and PO columns, each ascending and duplicate-free.
type Subspace struct {
	TO []int
	PO []int
}

// Rank selects the top-k ranking score.
type Rank string

const (
	// RankNone keeps the first K skyline rows in emission order — the
	// progressive-algorithm fast path (paper §IV: sTSS emits every
	// skyline point the moment it is certified).
	RankNone Rank = ""
	// RankDomCount orders skyline rows by the number of rows of R they
	// dominate, descending — the classic "most representative" score.
	RankDomCount Rank = "domcount"
	// RankIdeal orders skyline rows by L1 distance to an ideal point,
	// ascending — the dTSS fully-dynamic distance transform (|v − q|
	// per kept TO column, §V-B) plus, per kept PO column, the number of
	// values t-preferred to the row's value (depth below the top of the
	// preference DAG). Missing Ideal means the all-zeros origin.
	RankIdeal Rank = "ideal"
	// RankDPIDP orders skyline rows by the dominance-potential (dp-idp)
	// score, descending: every row of R dominated by exactly k skyline
	// members contributes 1/k to each of them, so members that
	// exclusively "explain" rows score highest. Index-eligible shapes
	// (full table, no filter) serve the scores from a per-table index
	// maintained across mutations.
	RankDPIDP Rank = "dpidp"
	// RankLayer returns rows by iterated-skyline depth: TopK is a depth
	// bound, and the result is every row of layers 1..K (layer 1 = the
	// skyline, layer i = the skyline of what remains) ordered by
	// (layer, id) — more rows than the skyline, by design.
	RankLayer Rank = "layer"
)

// The built-in rankings are registered in ranker.go/rankdpidp.go; the
// constants above are their wire names. Every tier — executor, oracle,
// stream, serving layer, cluster coordinator — dispatches through
// LookupRanker, so an externally registered Ranker is served end to end
// without new switch arms.

// Route is a physical predicate/cache placement, as reported (and
// optionally forced through Hints) by the planner.
type Route string

const (
	// RouteDirect runs the algorithm on the table as-is (no Where).
	RouteDirect Route = "direct"
	// RoutePushdown filters rows first, then computes the skyline of
	// the survivors — the definitional, always-sound placement.
	RoutePushdown Route = "pushdown"
	// RoutePostFilter computes (or reuses) the full skyline and filters
	// it afterwards — sound only under the anti-monotonicity proof.
	RoutePostFilter Route = "postfilter"
	// RouteCursor answers an unranked top-k with a progressive cursor
	// that stops after K emissions.
	RouteCursor Route = "cursor"
)

// Hints lets callers pin planner decisions (benchmarking, debugging).
// Zero values mean "planner decides".
type Hints struct {
	// Algorithm forces the named registered algorithm.
	Algorithm string
	// Parallelism > 0 forces that many shards behind the partition-and-
	// merge executor; < 0 forces a sequential run; 0 lets the planner
	// decide.
	Parallelism int
	// Route forces RoutePushdown or RoutePostFilter for a constrained
	// query. Forcing RoutePostFilter without the anti-monotonicity
	// proof is a planning error, not a silent wrong answer.
	Route Route
	// NoCache skips the full-skyline cache on both read and write.
	NoCache bool
	// NoKernel disables the dominance kernel (bitset closure, columnar
	// elimination, block zone maps), forcing the scalar reference path —
	// the ablation and differential-harness switch (core.Options.NoKernel).
	NoKernel bool
}

// Query is a logical skyline query. The zero value asks for the full
// skyline of the full table.
type Query struct {
	Subspace *Subspace
	Where    []Predicate
	// TopK keeps only the best K result rows (0 = all).
	TopK  int
	Rank  Rank
	Ideal []int64 // RankIdeal reference point, one value per table TO column
	// FWeights asks for the F-dominance restricted skyline instead of
	// the full one: per table TO column, a lower bound w_d ≥ 0 on the
	// scoring weight, with Σ over the kept columns ≤ 1 (see fdom.go for
	// the family W(w) this spans). Empty means unrestricted. Combines
	// with Subspace/Where/unranked TopK, but not with a Rank.
	FWeights []float64
	Hints    Hints
}

// Variant names the query shape for explain output and metrics.
func (q *Query) Variant() string {
	var parts []string
	if q.Subspace != nil {
		parts = append(parts, "subspace")
	}
	if len(q.Where) > 0 {
		parts = append(parts, "constrained")
	}
	if len(q.FWeights) > 0 {
		parts = append(parts, "restricted")
	}
	if q.TopK > 0 {
		parts = append(parts, "top-k")
	}
	if len(parts) == 0 {
		return "full"
	}
	s := parts[0]
	for _, p := range parts[1:] {
		s += "+" + p
	}
	return s
}

// Validate checks the query against a table shape: nTO/nPO column
// counts and per-PO-column domain sizes.
func (q *Query) Validate(nTO, nPO int, domainSizes []int) error {
	if q.TopK < 0 {
		return fmt.Errorf("plan: negative TopK %d", q.TopK)
	}
	var ranker Ranker
	if q.Rank != RankNone {
		r, ok := LookupRanker(string(q.Rank))
		if !ok {
			return fmt.Errorf("plan: unknown rank %q (have: %s)", q.Rank, quotedRankerNames())
		}
		ranker = r
		if q.TopK == 0 {
			return fmt.Errorf("plan: rank %q without TopK", q.Rank)
		}
	}
	if q.Ideal != nil {
		if _, uses := ranker.(IdealConsumer); !uses {
			return fmt.Errorf("plan: ideal point without rank %q", RankIdeal)
		}
		if len(q.Ideal) != nTO {
			return fmt.Errorf("plan: ideal point has %d values, table has %d TO columns", len(q.Ideal), nTO)
		}
	}
	if len(q.FWeights) > 0 {
		if q.Rank != RankNone {
			return fmt.Errorf("plan: fweights cannot combine with rank %q (the restricted skyline is unranked; unranked TopK keeps a prefix)", q.Rank)
		}
		if len(q.FWeights) != nTO {
			return fmt.Errorf("plan: fweights has %d values, table has %d TO columns", len(q.FWeights), nTO)
		}
		kept := make(map[int]bool, nTO)
		if q.Subspace != nil {
			for _, d := range q.Subspace.TO {
				kept[d] = true
			}
		}
		var sum float64
		for d, w := range q.FWeights {
			if !(w >= 0) || math.IsInf(w, 0) {
				return fmt.Errorf("plan: fweights[%d] = %v: weights must be finite and >= 0", d, w)
			}
			if q.Subspace == nil || kept[d] {
				sum += w
			}
		}
		if sum > 1 {
			return fmt.Errorf("plan: fweights sum %.6g over the kept TO columns exceeds 1 (the family { v >= w, sum(v) = 1 } is empty)", sum)
		}
	}
	if s := q.Subspace; s != nil {
		if err := checkDims("TO", s.TO, nTO); err != nil {
			return err
		}
		if err := checkDims("PO", s.PO, nPO); err != nil {
			return err
		}
		if len(s.TO) == 0 {
			return fmt.Errorf("plan: subspace must keep at least one TO column")
		}
	}
	for i, pr := range q.Where {
		switch pr.Kind {
		case TORange:
			if pr.Dim < 0 || pr.Dim >= nTO {
				return fmt.Errorf("plan: predicate %d: TO column %d out of range [0, %d)", i, pr.Dim, nTO)
			}
			if !pr.HasLo && !pr.HasHi {
				return fmt.Errorf("plan: predicate %d: range with no bounds", i)
			}
			if pr.HasLo && pr.HasHi && pr.Lo > pr.Hi {
				return fmt.Errorf("plan: predicate %d: empty range [%d, %d]", i, pr.Lo, pr.Hi)
			}
		case POIn:
			if pr.Dim < 0 || pr.Dim >= nPO {
				return fmt.Errorf("plan: predicate %d: PO column %d out of range [0, %d)", i, pr.Dim, nPO)
			}
			if len(pr.In) == 0 {
				return fmt.Errorf("plan: predicate %d: empty PO value set", i)
			}
			for _, v := range pr.In {
				if v < 0 || int(v) >= domainSizes[pr.Dim] {
					return fmt.Errorf("plan: predicate %d: value id %d outside domain of %d values",
						i, v, domainSizes[pr.Dim])
				}
			}
		default:
			return fmt.Errorf("plan: predicate %d: unknown kind %d", i, pr.Kind)
		}
	}
	switch q.Hints.Route {
	case "", RoutePushdown, RoutePostFilter:
	default:
		return fmt.Errorf("plan: route hint %q is not forceable (use %q or %q)",
			q.Hints.Route, RoutePushdown, RoutePostFilter)
	}
	if q.Hints.Route != "" && len(q.Where) == 0 {
		return fmt.Errorf("plan: route hint %q without predicates", q.Hints.Route)
	}
	return nil
}

// checkDims validates one subspace dimension list: in-range, strictly
// ascending (which also rules out duplicates).
func checkDims(kind string, dims []int, n int) error {
	for i, d := range dims {
		if d < 0 || d >= n {
			return fmt.Errorf("plan: subspace %s column %d out of range [0, %d)", kind, d, n)
		}
		if i > 0 && dims[i-1] >= d {
			return fmt.Errorf("plan: subspace %s columns must be strictly ascending", kind)
		}
	}
	return nil
}

// NormalizeDims sorts and deduplicates a dimension list into the form
// Validate accepts — the front-ends' parsing helper.
func NormalizeDims(dims []int) []int {
	out := append([]int(nil), dims...)
	sort.Ints(out)
	j := 0
	for i, d := range out {
		if i > 0 && out[j-1] == d {
			continue
		}
		out[j] = d
		j++
	}
	return out[:j]
}
