package plan

import (
	"context"
	"errors"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/poset"
)

// chainDomain builds the total order v0 → v1 → … → v(n-1).
func chainDomain(t testing.TB, n int) *poset.Domain {
	t.Helper()
	dag := poset.NewDAG(n)
	for i := 0; i+1 < n; i++ {
		dag.MustEdge(i, i+1)
	}
	dom, err := poset.NewDomain(dag)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

// diamondDomain builds 0 → {1, 2} → 3 (1 and 2 incomparable).
func diamondDomain(t testing.TB) *poset.Domain {
	t.Helper()
	dag := poset.NewDAG(4)
	dag.MustEdge(0, 1)
	dag.MustEdge(0, 2)
	dag.MustEdge(1, 3)
	dag.MustEdge(2, 3)
	dom, err := poset.NewDomain(dag)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

// sampleDS builds a deterministic mixed TO/PO dataset with table layout
// (ID == index): 2 TO columns plus one diamond PO column.
func sampleDS(t testing.TB, n int) *core.Dataset {
	t.Helper()
	ds := &core.Dataset{Domains: []*poset.Domain{diamondDomain(t)}}
	for i := 0; i < n; i++ {
		ds.Pts = append(ds.Pts, core.Point{
			ID: int32(i),
			TO: []int32{int32((i * 7) % 50), int32((i*13 + 3) % 50)},
			PO: []int32{int32(i % 4)},
		})
	}
	return ds
}

func sorted32(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// memCache is a test Cache.
type memCache struct {
	mu   sync.Mutex
	full []int32
	sub  map[string][]int32
}

func (c *memCache) GetFull() ([]int32, bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.full, false, c.full != nil
}

func (c *memCache) PutFull(ids []int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.full = ids
}

func (c *memCache) GetSubspace(key string) ([]int32, bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids, ok := c.sub[key]
	return ids, false, ok
}

func (c *memCache) PutSubspace(key string, ids []int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sub == nil {
		c.sub = make(map[string][]int32)
	}
	c.sub[key] = ids
}

// runPlan plans and runs q, returning the result ids and the explain.
func runPlan(t *testing.T, ds *core.Dataset, q Query, env Env) ([]int32, Explain) {
	t.Helper()
	p, err := New(ds, q, env)
	if err != nil {
		t.Fatalf("New(%+v): %v", q, err)
	}
	res, err := p.Run(context.Background(), ds, env)
	if err != nil {
		t.Fatalf("Run(%+v): %v", q, err)
	}
	return res.SkylineIDs, p.Explain
}

// queryBattery is the shared set of logical queries the agreement tests
// sweep.
func queryBattery() []Query {
	hi := func(v int64) Predicate { return Predicate{Kind: TORange, Dim: 0, HasHi: true, Hi: v} }
	lo := func(v int64) Predicate { return Predicate{Kind: TORange, Dim: 1, HasLo: true, Lo: v} }
	return []Query{
		{},
		{Subspace: &Subspace{TO: []int{0}, PO: []int{0}}},
		{Subspace: &Subspace{TO: []int{0, 1}}},
		{Subspace: &Subspace{TO: []int{1}}},
		{Where: []Predicate{hi(20)}},
		{Where: []Predicate{lo(10)}},
		{Where: []Predicate{hi(30), lo(5)}},
		{Where: []Predicate{{Kind: POIn, Dim: 0, In: []int32{0, 1}}}},
		{Where: []Predicate{{Kind: POIn, Dim: 0, In: []int32{1, 3}}}},
		{TopK: 5, Rank: RankDomCount},
		{TopK: 3, Rank: RankIdeal, Ideal: []int64{10, 10}},
		{TopK: 4, Rank: RankIdeal},
		{Where: []Predicate{hi(25)}, TopK: 3, Rank: RankDomCount},
		{Subspace: &Subspace{TO: []int{0}, PO: []int{0}}, Where: []Predicate{hi(40)}, TopK: 2, Rank: RankIdeal},
	}
}

// TestPlansAgreeWithOracle sweeps the query battery through the auto
// planner and through every registered algorithm forced, checking each
// against the brute-force oracle.
func TestPlansAgreeWithOracle(t *testing.T) {
	ds := sampleDS(t, 200)
	for qi, q := range queryBattery() {
		want, err := Naive(ds, q)
		if err != nil {
			t.Fatalf("query %d: oracle: %v", qi, err)
		}
		algos := []string{""}
		for _, a := range core.Algorithms() {
			algos = append(algos, a.Name())
		}
		for _, algo := range algos {
			fq := q
			fq.Hints.Algorithm = algo
			p, err := New(ds, fq, Env{})
			if err != nil {
				t.Fatalf("query %d algo %q: New: %v", qi, algo, err)
			}
			res, err := p.Run(context.Background(), ds, Env{})
			if err != nil {
				if algo != "" && !core.MustLookup(algo).Capabilities().POCapable && len(p.keptPO) > 0 {
					continue // TO-only algorithm on PO data: rejection is the contract
				}
				t.Fatalf("query %d algo %q: Run: %v", qi, algo, err)
			}
			if !equal32(sorted32(res.SkylineIDs), sorted32(want)) {
				t.Fatalf("query %d (%s) algo %q: got %v want %v",
					qi, q.Variant(), algo, sorted32(res.SkylineIDs), sorted32(want))
			}
		}
	}
}

// TestRankedTopKExactOrder pins the ranked result order, not just the
// set: scores then row id break ties totally.
func TestRankedTopKExactOrder(t *testing.T) {
	ds := sampleDS(t, 120)
	for _, q := range []Query{
		{TopK: 6, Rank: RankDomCount},
		{TopK: 6, Rank: RankIdeal, Ideal: []int64{25, 25}},
	} {
		want, err := Naive(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := runPlan(t, ds, q, Env{})
		if !equal32(got, want) {
			t.Fatalf("rank %q: got order %v want %v", q.Rank, got, want)
		}
	}
}

// TestUnrankedTopK checks the emission-order contract: K results, all
// members of the full skyline, served by the cursor route.
func TestUnrankedTopK(t *testing.T) {
	ds := sampleDS(t, 200)
	full, err := Naive(ds, Query{})
	if err != nil {
		t.Fatal(err)
	}
	member := make(map[int32]bool, len(full))
	for _, id := range full {
		member[id] = true
	}
	k := 3
	ids, ex := runPlan(t, ds, Query{TopK: k}, Env{})
	if ex.Route != RouteCursor {
		t.Fatalf("route %q, want %q", ex.Route, RouteCursor)
	}
	wantLen := k
	if len(full) < k {
		wantLen = len(full)
	}
	if len(ids) != wantLen {
		t.Fatalf("got %d rows, want %d", len(ids), wantLen)
	}
	for _, id := range ids {
		if !member[id] {
			t.Fatalf("row %d not in the full skyline %v", id, full)
		}
	}
}

func TestAntiMonotoneProof(t *testing.T) {
	ds := sampleDS(t, 10)
	cases := []struct {
		name string
		pred Predicate
		want bool
	}{
		{"upper bound", Predicate{Kind: TORange, Dim: 0, HasHi: true, Hi: 5}, true},
		{"lower bound", Predicate{Kind: TORange, Dim: 0, HasLo: true, Lo: 5}, false},
		{"both bounds", Predicate{Kind: TORange, Dim: 0, HasLo: true, Lo: 1, HasHi: true, Hi: 5}, false},
		// Diamond 0→{1,2}→3: {0,1} is upward closed, {1,3} is not (0 and
		// 2 are preferred to members but excluded).
		{"PO up-set", Predicate{Kind: POIn, Dim: 0, In: []int32{0, 1}}, true},
		{"PO top only", Predicate{Kind: POIn, Dim: 0, In: []int32{0}}, true},
		{"PO not up-set", Predicate{Kind: POIn, Dim: 0, In: []int32{1, 3}}, false},
	}
	for _, tc := range cases {
		got, reason := allAntiMonotone(ds, Query{Where: []Predicate{tc.pred}})
		if got != tc.want {
			t.Errorf("%s: antiMonotone=%v (reason %q), want %v", tc.name, got, reason, tc.want)
		}
	}
}

// TestCacheRouting drives the cache life cycle: a full-skyline run
// populates it, an anti-monotone constrained query is then served
// post-filter from the cache, and a non-anti-monotone one still pushes
// down.
func TestCacheRouting(t *testing.T) {
	ds := sampleDS(t, 150)
	cache := &memCache{}
	env := Env{Cache: cache, Learned: NewLearned()}

	full, ex := runPlan(t, ds, Query{}, env)
	if ex.CacheHit {
		t.Fatal("first full run reported a cache hit")
	}
	if _, _, ok := cache.GetFull(); !ok {
		t.Fatal("full run did not populate the cache")
	}

	ids2, ex2 := runPlan(t, ds, Query{}, env)
	if !ex2.CacheHit {
		t.Fatal("second full run missed the cache")
	}
	if !equal32(sorted32(ids2), sorted32(full)) {
		t.Fatal("cached full skyline differs")
	}

	am := Query{Where: []Predicate{{Kind: TORange, Dim: 0, HasHi: true, Hi: 20}}}
	want, err := Naive(ds, am)
	if err != nil {
		t.Fatal(err)
	}
	ids3, ex3 := runPlan(t, ds, am, env)
	if ex3.Route != RoutePostFilter || !ex3.CacheHit {
		t.Fatalf("anti-monotone query with warm cache: route %q cacheHit %v", ex3.Route, ex3.CacheHit)
	}
	if !equal32(sorted32(ids3), sorted32(want)) {
		t.Fatalf("post-filter answer differs from oracle: got %v want %v", sorted32(ids3), sorted32(want))
	}

	nonAM := Query{Where: []Predicate{{Kind: TORange, Dim: 0, HasLo: true, Lo: 10}}}
	_, ex4 := runPlan(t, ds, nonAM, env)
	if ex4.Route != RoutePushdown || ex4.CacheHit {
		t.Fatalf("non-anti-monotone query: route %q cacheHit %v, want pushdown cold", ex4.Route, ex4.CacheHit)
	}

	// NoCache must bypass a warm cache.
	_, ex5 := runPlan(t, ds, Query{Hints: Hints{NoCache: true}}, env)
	if ex5.CacheHit {
		t.Fatal("NoCache hint still hit the cache")
	}
}

func TestForcedPostFilterNeedsProof(t *testing.T) {
	ds := sampleDS(t, 20)
	q := Query{
		Where: []Predicate{{Kind: TORange, Dim: 0, HasLo: true, Lo: 5}},
		Hints: Hints{Route: RoutePostFilter},
	}
	if _, err := New(ds, q, Env{}); err == nil {
		t.Fatal("forced post-filter on a non-anti-monotone predicate planned without error")
	}
	// Provably anti-monotone but projected: the blocker is the
	// subspace, and the error must say so.
	sq := Query{
		Where:    []Predicate{{Kind: TORange, Dim: 0, HasHi: true, Hi: 5}},
		Subspace: &Subspace{TO: []int{0}},
		Hints:    Hints{Route: RoutePostFilter},
	}
	_, err := New(ds, sq, Env{})
	if err == nil {
		t.Fatal("forced post-filter on a subspace query planned without error")
	}
	if !strings.Contains(err.Error(), "subspace") {
		t.Fatalf("subspace post-filter error does not name the blocker: %v", err)
	}
}

// TestForcedParallelTopKSkipsCursor: a forced shard count must be
// honored, so unranked top-k falls back to a full truncated run instead
// of the sequential cursor.
func TestForcedParallelTopKSkipsCursor(t *testing.T) {
	ds := sampleDS(t, 200)
	ids, ex := runPlan(t, ds, Query{TopK: 3, Hints: Hints{Parallelism: 2}}, Env{})
	if ex.Route == RouteCursor {
		t.Fatal("forced parallelism still took the sequential cursor route")
	}
	if ex.Parallelism != 2 || len(ids) != 3 {
		t.Fatalf("parallelism %d rows %d", ex.Parallelism, len(ids))
	}
}

// TestRankedTopKEmissionsMatchResult: after a ranked truncation the
// metrics' emission records describe exactly the returned rows.
func TestRankedTopKEmissionsMatchResult(t *testing.T) {
	ds := sampleDS(t, 120)
	p, err := New(ds, Query{TopK: 4, Rank: RankDomCount}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), ds, Env{})
	if err != nil {
		t.Fatal(err)
	}
	kept := make(map[int32]bool, len(res.SkylineIDs))
	for _, id := range res.SkylineIDs {
		kept[id] = true
	}
	if len(res.Metrics.Emissions) != len(res.SkylineIDs) {
		t.Fatalf("%d emissions for %d result rows", len(res.Metrics.Emissions), len(res.SkylineIDs))
	}
	for _, e := range res.Metrics.Emissions {
		if !kept[e.ID] {
			t.Fatalf("emission for row %d, which is not in the result %v", e.ID, res.SkylineIDs)
		}
	}
}

// TestStatsAdvanceFromEmptyTable: stats cached on an empty table must
// not leak their zeroed bounds into the first real batch.
func TestStatsAdvanceFromEmptyTable(t *testing.T) {
	empty := &core.Dataset{Domains: []*poset.Domain{diamondDomain(t)}}
	s := Analyze(empty)
	next := &core.Dataset{Domains: empty.Domains, Pts: []core.Point{
		{ID: 0, TO: []int32{100, 200}, PO: []int32{0}},
		{ID: 1, TO: []int32{150, 250}, PO: []int32{1}},
	}}
	s2 := s.Advance(empty, next, nil, 2)
	if s2.TO[0].Min != 100 || s2.TO[0].Max != 150 {
		t.Fatalf("bounds after first batch: %+v (zeroed Min leaked?)", s2.TO[0])
	}
}

func TestValidateRejects(t *testing.T) {
	ds := sampleDS(t, 10)
	bad := []Query{
		{TopK: -1},
		{Rank: RankDomCount},   // rank without TopK
		{Ideal: []int64{1, 2}}, // ideal without rank
		{TopK: 1, Rank: RankIdeal, Ideal: []int64{1}},              // ideal arity
		{Subspace: &Subspace{TO: []int{}}},                         // no TO dim kept
		{Subspace: &Subspace{TO: []int{1, 0}}},                     // not ascending
		{Subspace: &Subspace{TO: []int{0, 0}}},                     // duplicate
		{Subspace: &Subspace{TO: []int{2}}},                        // out of range
		{Where: []Predicate{{Kind: TORange, Dim: 5}}},              // bad dim
		{Where: []Predicate{{Kind: TORange, Dim: 0}}},              // no bounds
		{Where: []Predicate{{Kind: POIn, Dim: 0}}},                 // empty set
		{Where: []Predicate{{Kind: POIn, Dim: 0, In: []int32{9}}}}, // bad value
		{Hints: Hints{Route: RouteCursor}},                         // not forceable
		{Where: []Predicate{{Kind: TORange, Dim: 0, HasHi: true}}, Hints: Hints{Route: "bogus"}},
	}
	for i, q := range bad {
		if _, err := New(ds, q, Env{}); err == nil {
			t.Errorf("query %d (%+v): expected a validation error", i, q)
		}
	}
}

func TestStatsAnalyzeAndAdvance(t *testing.T) {
	ds := sampleDS(t, 100)
	s := Analyze(ds)
	if s.Rows != 100 || len(s.TO) != 2 || len(s.PO) != 1 {
		t.Fatalf("bad shape: %+v", s)
	}
	wantMin, wantMax := int64(math.MaxInt64), int64(math.MinInt64)
	for i := range ds.Pts {
		v := int64(ds.Pts[i].TO[0])
		if v < wantMin {
			wantMin = v
		}
		if v > wantMax {
			wantMax = v
		}
	}
	if s.TO[0].Min != wantMin || s.TO[0].Max != wantMax {
		t.Fatalf("TO[0] bounds [%d, %d], want [%d, %d]", s.TO[0].Min, s.TO[0].Max, wantMin, wantMax)
	}
	if s.PO[0].DomainSize != 4 || s.PO[0].Distinct != 4 {
		t.Fatalf("PO stats %+v", s.PO[0])
	}

	// Incremental append widens the max.
	next := &core.Dataset{Domains: ds.Domains, Pts: append(append([]core.Point(nil), ds.Pts...),
		core.Point{ID: 100, TO: []int32{999, 1}, PO: []int32{0}})}
	oldToNew := make([]int32, 100)
	for i := range oldToNew {
		oldToNew[i] = int32(i)
	}
	s2 := s.Advance(ds, next, oldToNew, 1)
	if s2.Rows != 101 || s2.TO[0].Max != 999 {
		t.Fatalf("advance add: %+v", s2.TO[0])
	}
	if s.TO[0].Max == 999 {
		t.Fatal("Advance mutated the receiver")
	}

	// Removing the extreme row must trigger a recompute that restores
	// the true bounds.
	var maxRow int
	for i := range next.Pts {
		if next.Pts[i].TO[0] == 999 {
			maxRow = i
		}
	}
	after := &core.Dataset{Domains: ds.Domains}
	o2n := make([]int32, len(next.Pts))
	for i := range next.Pts {
		if i == maxRow {
			o2n[i] = -1
			continue
		}
		p := next.Pts[i]
		p.ID = int32(len(after.Pts))
		o2n[i] = p.ID
		after.Pts = append(after.Pts, p)
	}
	s3 := s2.Advance(next, after, o2n, 0)
	if s3.TO[0].Max != wantMax {
		t.Fatalf("advance remove-extreme: max %d, want %d", s3.TO[0].Max, wantMax)
	}
}

func TestCorrelationSign(t *testing.T) {
	corr := &core.Dataset{}
	anti := &core.Dataset{}
	for i := 0; i < 500; i++ {
		corr.Pts = append(corr.Pts, core.Point{ID: int32(i), TO: []int32{int32(i), int32(i + 3)}})
		anti.Pts = append(anti.Pts, core.Point{ID: int32(i), TO: []int32{int32(i), int32(500 - i)}})
	}
	if s := Analyze(corr); s.CorrSign < 0.5 {
		t.Fatalf("correlated sign %f", s.CorrSign)
	}
	if s := Analyze(anti); s.CorrSign > -0.5 {
		t.Fatalf("anti-correlated sign %f", s.CorrSign)
	}
}

func TestLearnedFeedback(t *testing.T) {
	l := NewLearned()
	if m := l.CostMultiplier("stss"); m != 1 {
		t.Fatalf("cold multiplier %f", m)
	}
	l.ObserveCost("stss", 1.0, 3.0)
	if m := l.CostMultiplier("stss"); m != 3 {
		t.Fatalf("first observation multiplier %f, want 3", m)
	}
	l.ObserveSkyline(FullVariant, 1000, 100)
	if f, ok := l.SkylineFrac(FullVariant); !ok || f != 0.1 {
		t.Fatalf("skyline frac %f ok=%v", f, ok)
	}
	l.ObserveSkyline("to:0|po:", 1000, 10)
	if f, ok := l.SkylineFrac("to:0|po:"); !ok || f != 0.01 {
		t.Fatalf("subspace variant frac %f ok=%v", f, ok)
	}
	if f, _ := l.SkylineFrac(FullVariant); f != 0.1 {
		t.Fatalf("full variant polluted by subspace observation: %f", f)
	}

	st := l.Export()
	l2 := ImportLearned(st)
	if m := l2.CostMultiplier("stss"); m != 3 {
		t.Fatalf("round-trip multiplier %f", m)
	}
	if f, ok := l2.SkylineFrac(FullVariant); !ok || f != 0.1 {
		t.Fatalf("round-trip frac %f ok=%v", f, ok)
	}
	if f, ok := l2.SkylineFrac("to:0|po:"); !ok || f != 0.01 {
		t.Fatalf("round-trip variant frac %f ok=%v", f, ok)
	}
	if len(st.Variants) != 2 {
		t.Fatalf("exported %d variants, want 2", len(st.Variants))
	}
	if len(st.Algos) != 1 || st.Algos[0].Name != "stss" {
		t.Fatalf("export %+v", st)
	}
}

// TestPlannerUsesFeedback: after the executor observes runs, the
// planner's estimated skyline comes from the EWMA.
func TestPlannerUsesFeedback(t *testing.T) {
	ds := sampleDS(t, 200)
	env := Env{Learned: NewLearned(), Stats: Analyze(ds)}
	_, ex := runPlan(t, ds, Query{}, env)
	if ex.SkyFracFrom != "correlation-default" {
		t.Fatalf("cold run frac source %q", ex.SkyFracFrom)
	}
	_, ex2 := runPlan(t, ds, Query{}, env)
	if ex2.SkyFracFrom != "observed" {
		t.Fatalf("warm run frac source %q", ex2.SkyFracFrom)
	}
	if ex2.EstSkyline <= 0 {
		t.Fatalf("estimated skyline %d", ex2.EstSkyline)
	}
}

// TestSubspaceDropsPOEnablesTOOnly: projecting away the PO column makes
// the TO-only sort-based algorithms legal candidates.
func TestSubspaceDropsPOEnablesTOOnly(t *testing.T) {
	ds := sampleDS(t, 50)
	q := Query{Subspace: &Subspace{TO: []int{0, 1}}, Hints: Hints{Algorithm: "salsa"}}
	want, err := Naive(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	got, ex := runPlan(t, ds, q, Env{})
	if ex.Algorithm != "salsa" {
		t.Fatalf("algorithm %q", ex.Algorithm)
	}
	if !equal32(sorted32(got), sorted32(want)) {
		t.Fatalf("salsa on TO subspace: got %v want %v", sorted32(got), sorted32(want))
	}
}

func TestContextCancellation(t *testing.T) {
	ds := sampleDS(t, 100)
	p, err := New(ds, Query{}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, ds, Env{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v", err)
	}
}

func TestSelectivityEstimate(t *testing.T) {
	stats := &Stats{
		Rows: 100,
		TO:   []ColStats{{Min: 0, Max: 99}},
		PO:   []POStats{{Distinct: 4, DomainSize: 4}},
	}
	cases := []struct {
		pred Predicate
		want float64
	}{
		{Predicate{Kind: TORange, Dim: 0, HasHi: true, Hi: 49}, 0.5},
		{Predicate{Kind: TORange, Dim: 0, HasLo: true, Lo: 90}, 0.1},
		{Predicate{Kind: POIn, Dim: 0, In: []int32{0}}, 0.25},
	}
	for _, tc := range cases {
		got := selectivity(stats, []Predicate{tc.pred})
		if math.Abs(got-tc.want) > 0.02 {
			t.Errorf("selectivity(%+v) = %f, want %f", tc.pred, got, tc.want)
		}
	}
}

func TestNormalizeDims(t *testing.T) {
	got := NormalizeDims([]int{3, 1, 3, 0, 1})
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// TestSubspaceCacheRouting proves the memo's subspace half: a repeat
// subspace query on the same snapshot is a cache hit keyed by its
// kept-dimension set, distinct subspaces do not collide, and the
// explain reports the route.
func TestSubspaceCacheRouting(t *testing.T) {
	ds := sampleDS(t, 150)
	env := Env{Cache: NewMemoCache(), Learned: NewLearned()}
	subA := Query{Subspace: &Subspace{TO: []int{0}, PO: []int{0}}}
	subB := Query{Subspace: &Subspace{TO: []int{1}}}

	idsA, exA := runPlan(t, ds, subA, env)
	if exA.CacheHit {
		t.Fatal("cold subspace run reported a cache hit")
	}
	idsA2, exA2 := runPlan(t, ds, subA, env)
	if !exA2.CacheHit {
		t.Fatal("repeat subspace query missed the memo")
	}
	if !strings.Contains(exA2.RouteReason, "subspace skyline cached") {
		t.Fatalf("explain does not report the subspace cache route: %q", exA2.RouteReason)
	}
	if !equal32(sorted32(idsA), sorted32(idsA2)) {
		t.Fatalf("cached subspace result diverges: %v vs %v", idsA, idsA2)
	}
	// A different kept-dimension set must not be served from A's entry.
	idsB, exB := runPlan(t, ds, subB, env)
	if exB.CacheHit {
		t.Fatal("distinct subspace served from the wrong memo entry")
	}
	want, err := Naive(ds, subB)
	if err != nil {
		t.Fatal(err)
	}
	if !equal32(sorted32(idsB), sorted32(want)) {
		t.Fatalf("subspace B result wrong: %v want %v", idsB, want)
	}
	// The full-skyline half stays independent of subspace entries.
	if _, _, ok := env.Cache.GetFull(); ok {
		t.Fatal("subspace runs must not populate the full-skyline memo")
	}
	if _, ex := runPlan(t, ds, Query{}, env); ex.CacheHit {
		t.Fatal("full query served from a subspace entry")
	}
	if _, ex := runPlan(t, ds, Query{}, env); !ex.CacheHit {
		t.Fatal("repeat full query missed the memo")
	}
}

// TestPerVariantSkylineFrac shows the planner follow-up motivating the
// split: under a mixed workload alternating full-dimensional and
// subspace queries, per-variant EWMAs converge each variant's skyline-
// size estimate to its own truth, where the old single global EWMA was
// dragged to whichever variant ran last.
func TestPerVariantSkylineFrac(t *testing.T) {
	ds := sampleDS(t, 400)
	full := Query{Hints: Hints{NoCache: true}}
	sub := Query{Subspace: &Subspace{TO: []int{0}}, Hints: Hints{NoCache: true}}
	fullIDs, err := Naive(ds, full)
	if err != nil {
		t.Fatal(err)
	}
	subIDs, err := Naive(ds, sub)
	if err != nil {
		t.Fatal(err)
	}
	trueFull, trueSub := len(fullIDs), len(subIDs)
	if trueFull == trueSub {
		t.Fatalf("degenerate fixture: both variants have %d skyline rows", trueFull)
	}

	env := Env{Learned: NewLearned()}
	// Warm up: alternate the two variants so a shared EWMA would end up
	// tracking a blend of two very different fractions.
	for i := 0; i < 6; i++ {
		runPlan(t, ds, full, env)
		runPlan(t, ds, sub, env)
	}
	cases := []struct {
		name string
		q    Query
		want int
	}{
		{"full", full, trueFull},
		{"subspace", sub, trueSub},
	}
	for _, tc := range cases {
		p, err := New(ds, tc.q, env)
		if err != nil {
			t.Fatal(err)
		}
		if p.Explain.SkyFracFrom != "observed" {
			t.Fatalf("%s: estimate not from the observed EWMA (%s)", tc.name, p.Explain.SkyFracFrom)
		}
		est := p.Explain.EstSkyline
		relErr := math.Abs(float64(est-tc.want)) / float64(tc.want)
		if relErr > 0.15 {
			t.Errorf("%s: estimated %d skyline rows, true %d (rel err %.2f > 0.15)",
				tc.name, est, tc.want, relErr)
		}
		// The estimate a single global EWMA would produce for both
		// variants — the mean of the two fractions, i.e. the mean of the
		// two true sizes in rows — must be a strictly worse estimate:
		// that is the regression the split fixes.
		blendErr := math.Abs((float64(trueFull)+float64(trueSub))/2 - float64(tc.want))
		if math.Abs(float64(est-tc.want)) >= blendErr {
			t.Errorf("%s: per-variant estimate (err %d) no better than a blended global one (err %.0f)",
				tc.name, est-tc.want, blendErr)
		}
	}
}

// TestMergeStats checks the coordinator-side union of per-shard
// statistics: summed rows, unioned bounds, row-weighted correlation,
// and zero-row parts skipped.
func TestMergeStats(t *testing.T) {
	a := &Stats{Rows: 100, TO: []ColStats{{Min: 5, Max: 40, Distinct: 30}}, CorrSign: 0.5}
	b := &Stats{Rows: 300, TO: []ColStats{{Min: 0, Max: 25, Distinct: 20}}, CorrSign: -0.5}
	empty := &Stats{TO: []ColStats{}}
	got := MergeStats(a, empty, nil, b)
	if got.Rows != 400 {
		t.Fatalf("rows %d, want 400", got.Rows)
	}
	if got.TO[0].Min != 0 || got.TO[0].Max != 40 || got.TO[0].Distinct != 30 {
		t.Fatalf("TO bounds %+v", got.TO[0])
	}
	if want := (0.5*100 - 0.5*300) / 400; math.Abs(got.CorrSign-want) > 1e-12 {
		t.Fatalf("corr %f, want %f", got.CorrSign, want)
	}
	if MergeStats(nil, empty) != nil {
		t.Fatal("merge of empty parts must be nil")
	}
	// Shape mismatch is an error signalled by nil, not a panic.
	if MergeStats(a, &Stats{Rows: 1, TO: []ColStats{{}, {}}}) != nil {
		t.Fatal("shape mismatch must yield nil")
	}
}

// TestDomCounts cross-checks the shard-side scoring primitive against
// the executor's own ranked top-k: scoring the full skyline by value
// must reproduce the domcount order the planner computes by id.
func TestDomCounts(t *testing.T) {
	ds := sampleDS(t, 150)
	for _, q := range []Query{
		{},
		{Subspace: &Subspace{TO: []int{0}, PO: []int{0}}},
		{Where: []Predicate{{Kind: TORange, Dim: 0, HasHi: true, Hi: 30}}},
	} {
		sky, err := Naive(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		cands := make([]core.Point, len(sky))
		for i, id := range sky {
			cands[i] = ds.Pts[id]
		}
		counts, err := DomCounts(context.Background(), ds, q, cands)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: count dominated rows of R per skyline member directly.
		keptTO, keptPO := resolveSubspace(q.Subspace, ds.NumTO(), ds.NumPO())
		doms := keptPODomains(ds, keptPO)
		for i, id := range sky {
			var want int64
			cp := projectInto(&ds.Pts[id], keptTO, keptPO)
			for r := range ds.Pts {
				row := &ds.Pts[r]
				if len(q.Where) > 0 && !matchesAllPreds(q.Where, row) {
					continue
				}
				rp := projectInto(row, keptTO, keptPO)
				if core.DominatesUnder(doms, &cp, &rp) {
					want++
				}
			}
			if counts[i] != want {
				t.Fatalf("query %+v: candidate %d count %d, want %d", q, id, counts[i], want)
			}
		}
	}
	// Dimension mismatch is rejected.
	if _, err := DomCounts(context.Background(), ds, Query{}, []core.Point{{TO: []int32{1}}}); err == nil {
		t.Fatal("mis-dimensioned candidate accepted")
	}
}
