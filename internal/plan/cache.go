package plan

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// DefaultSubspaceCap bounds the subspace half of a MemoCache. Now that
// memos survive mutations (Advance) a table's subspace entries would
// otherwise accumulate for the life of the table instead of dying with
// each snapshot; beyond the cap the least-recently-used entry is
// evicted.
const DefaultSubspaceCap = 32

// memoEntry is one memoised skyline: the ids plus whether the entry was
// produced by delta maintenance (Advance) rather than a cold compute.
// seq is the LRU recency stamp of subspace entries.
type memoEntry struct {
	ids        []int32
	maintained bool
	seq        uint64
}

// MaintStats is a point-in-time snapshot of a memo lineage's
// maintenance counters (see MemoCache.MaintStats).
type MaintStats struct {
	// Advances counts memo entries carried across a mutation by delta
	// maintenance (full and subspace entries count individually).
	Advances int64 `json:"advances"`
	// Fallbacks counts entries dropped because the batch's churn
	// exceeded the maintenance threshold — the next query recomputes
	// from cold.
	Fallbacks int64 `json:"fallbacks"`
	// Promotions counts rows that entered a maintained skyline because
	// a removed member no longer dominated them.
	Promotions int64 `json:"promotions"`
	// SubspaceEvictions counts subspace entries evicted by the LRU cap.
	SubspaceEvictions int64 `json:"subspaceEvictions"`
	// IndexAdvances counts dp-idp score indexes carried across a
	// mutation incrementally; IndexFallbacks counts indexes dropped
	// (membership churn over threshold, or no maintained skyline to
	// advance against) — the next index-backed ranked query rebuilds.
	IndexAdvances  int64 `json:"indexAdvances"`
	IndexFallbacks int64 `json:"indexFallbacks"`
}

// maintCounters is the shared mutable form of MaintStats. One instance
// is carried across a table's whole memo lineage: Advance hands the
// pointer to the successor memo, so the counters are cumulative per
// table, not per snapshot.
type maintCounters struct {
	advances, fallbacks, promotions, subEvictions atomic.Int64
	idxAdvances, idxFallbacks                     atomic.Int64
}

// MemoCache is a ready-made Cache: an atomically published memo of the
// full skyline of one immutable row set, plus a bounded LRU-keyed memo
// of subspace skylines (one entry per kept-dimension set). The serving
// layer binds one to each table snapshot; tss.Table.SetQueryCache
// accepts one directly. Concurrent racing Puts are benign — for any
// given key every writer stores the same skyline set, because the row
// set the memo describes never changes. Across mutations the memo is
// not discarded: Advance re-certifies its entries against the batch
// delta (see that method).
type MemoCache struct {
	full     atomic.Pointer[memoEntry]
	scoreIdx atomic.Pointer[core.ScoreIndex] // dp-idp index of the full skyline

	mu     sync.Mutex
	sub    map[string]*memoEntry // kept-dimension key -> subspace skyline
	seq    uint64                // LRU clock
	subCap int

	maint *maintCounters // shared across the Advance lineage
}

// NewMemoCache returns an empty memo with the default subspace cap.
func NewMemoCache() *MemoCache {
	return &MemoCache{subCap: DefaultSubspaceCap, maint: &maintCounters{}}
}

// NewMemoCacheWithCap returns an empty memo whose subspace LRU holds up
// to cap entries; cap <= 0 means DefaultSubspaceCap. Advance propagates
// the cap to successor memos.
func NewMemoCacheWithCap(cap int) *MemoCache {
	if cap <= 0 {
		cap = DefaultSubspaceCap
	}
	return &MemoCache{subCap: cap, maint: &maintCounters{}}
}

// SubspaceCap reports the configured subspace LRU capacity.
func (c *MemoCache) SubspaceCap() int {
	if c.subCap <= 0 {
		return DefaultSubspaceCap
	}
	return c.subCap
}

// GetFull returns the memoised full skyline, if any, and whether the
// entry was produced by delta maintenance.
func (c *MemoCache) GetFull() (ids []int32, maintained, ok bool) {
	if e := c.full.Load(); e != nil {
		return e.ids, e.maintained, true
	}
	return nil, false, false
}

// PutFull publishes the full skyline of the current row set (a cold
// compute — maintained entries are installed only by Advance). The
// caller must not mutate ids afterwards.
func (c *MemoCache) PutFull(ids []int32) { c.full.Store(&memoEntry{ids: ids}) }

// GetScoreIndex returns the memo's dp-idp score index, if any —
// the ScoreIndexCache capability the executor probes for.
func (c *MemoCache) GetScoreIndex() (*core.ScoreIndex, bool) {
	if ix := c.scoreIdx.Load(); ix != nil {
		return ix, true
	}
	return nil, false
}

// PutScoreIndex publishes a cold-built dp-idp index of the current row
// set's full skyline. The caller must not mutate it afterwards.
func (c *MemoCache) PutScoreIndex(ix *core.ScoreIndex) { c.scoreIdx.Store(ix) }

// GetSubspace returns the memoised skyline of the kept-dimension set
// named by key (see SubspaceKey), if any, and whether the entry was
// produced by delta maintenance. A hit refreshes the entry's LRU
// recency.
func (c *MemoCache) GetSubspace(key string) (ids []int32, maintained, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.sub[key]
	if !ok {
		return nil, false, false
	}
	c.seq++
	e.seq = c.seq
	return e.ids, e.maintained, true
}

// PutSubspace memoises the skyline of one kept-dimension set, evicting
// the least-recently-used entry if the cap is exceeded. The caller must
// not mutate ids afterwards.
func (c *MemoCache) PutSubspace(key string, ids []int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putSubspaceLocked(key, &memoEntry{ids: ids})
}

func (c *MemoCache) putSubspaceLocked(key string, e *memoEntry) {
	if c.sub == nil {
		c.sub = make(map[string]*memoEntry)
	}
	c.seq++
	e.seq = c.seq
	c.sub[key] = e
	limit := c.subCap
	if limit <= 0 {
		limit = DefaultSubspaceCap
	}
	for len(c.sub) > limit {
		victim, min := "", uint64(0)
		for k, se := range c.sub {
			if victim == "" || se.seq < min {
				victim, min = k, se.seq
			}
		}
		delete(c.sub, victim)
		if c.maint != nil {
			c.maint.subEvictions.Add(1)
		}
	}
}

// MaintStats snapshots the maintenance counters of this memo's lineage
// (cumulative across Advance calls, shared with every ancestor and
// successor memo of the same table).
func (c *MemoCache) MaintStats() MaintStats {
	if c.maint == nil {
		return MaintStats{}
	}
	return MaintStats{
		Advances:          c.maint.advances.Load(),
		Fallbacks:         c.maint.fallbacks.Load(),
		Promotions:        c.maint.promotions.Load(),
		SubspaceEvictions: c.maint.subEvictions.Load(),
		IndexAdvances:     c.maint.idxAdvances.Load(),
		IndexFallbacks:    c.maint.idxFallbacks.Load(),
	}
}

// Advance carries this memo across a mutation: it returns a new
// MemoCache for the post-batch row set whose entries are re-certified
// from the old ones by delta maintenance (core.MaintainSkyline) instead
// of being recomputed from cold. Entries whose batch churn exceeds the
// maintenance threshold are dropped individually (counted as
// fallbacks); the receiving memo stays valid for readers of the old
// snapshot. oldDS/newDS are the row sets before and after the batch;
// delta maps old row indexes to new ones as Table.ApplyBatch reports.
func (c *MemoCache) Advance(oldDS, newDS *core.Dataset, delta *core.Delta) *MemoCache {
	next := &MemoCache{subCap: c.subCap, maint: c.maint}
	if next.maint == nil {
		next.maint = &maintCounters{}
	}

	if e := c.full.Load(); e != nil {
		if ids, st, ok := core.MaintainSkyline(oldDS, newDS, delta, e.ids, nil, nil); ok {
			next.full.Store(&memoEntry{ids: ids, maintained: true})
			next.maint.advances.Add(1)
			next.maint.promotions.Add(int64(st.Promotions))
		} else {
			next.maint.fallbacks.Add(1)
		}
	}

	// The dp-idp score index advances only when the full skyline itself
	// survived maintenance (the advanced member set is its input); a
	// skyline fallback, an over-threshold membership churn, or a failed
	// integer re-derivation drops the index for a lazy rebuild on the
	// next index-backed ranked query.
	if ix := c.scoreIdx.Load(); ix != nil {
		advanced := false
		if nf := next.full.Load(); nf != nil {
			if nix, ok := ix.Advance(oldDS, newDS, delta, nf.ids); ok {
				next.scoreIdx.Store(nix)
				next.maint.idxAdvances.Add(1)
				advanced = true
			}
		}
		if !advanced {
			next.maint.idxFallbacks.Add(1)
		}
	}

	c.mu.Lock()
	keys := make([]string, 0, len(c.sub))
	entries := make([]*memoEntry, 0, len(c.sub))
	for k, e := range c.sub {
		keys = append(keys, k)
		entries = append(entries, e)
	}
	c.mu.Unlock()
	for i, key := range keys {
		// Weight-restricted entries are not incrementally maintainable
		// (an added row can join the restricted skyline without any
		// member changing); they die with the snapshot, silently — the
		// restriction recomputes from the maintained base entry.
		if strings.Contains(key, restrictedKeyMark) {
			continue
		}
		keptTO, keptPO, err := parseSubspaceKey(key)
		if err != nil {
			next.maint.fallbacks.Add(1)
			continue
		}
		ids, st, ok := core.MaintainSkyline(oldDS, newDS, delta, entries[i].ids, keptTO, keptPO)
		if !ok {
			next.maint.fallbacks.Add(1)
			continue
		}
		next.maint.advances.Add(1)
		next.maint.promotions.Add(int64(st.Promotions))
		next.mu.Lock()
		next.putSubspaceLocked(key, &memoEntry{ids: ids, maintained: true})
		next.mu.Unlock()
	}
	return next
}

// SubspaceKey canonically names a kept-dimension set — the memo key of
// subspace entries and the Learned skyline-fraction variant key. The
// dimension lists must be in Validate's canonical form (ascending,
// duplicate-free); nil yields FullVariant.
func SubspaceKey(s *Subspace) string {
	if s == nil {
		return FullVariant
	}
	var b strings.Builder
	b.WriteString("to:")
	for i, d := range s.TO {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteString("|po:")
	for i, d := range s.PO {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	return b.String()
}

// parseSubspaceKey inverts SubspaceKey, recovering the kept TO and PO
// dimension lists. The returned slices are non-nil even when empty, so
// they never alias the nil/nil "full dimensionality" form.
func parseSubspaceKey(key string) (keptTO, keptPO []int, err error) {
	rest, ok := strings.CutPrefix(key, "to:")
	if !ok {
		return nil, nil, fmt.Errorf("plan: subspace key %q: missing to:", key)
	}
	toPart, poPart, ok := strings.Cut(rest, "|po:")
	if !ok {
		return nil, nil, fmt.Errorf("plan: subspace key %q: missing |po:", key)
	}
	parse := func(s string) ([]int, error) {
		out := []int{}
		if s == "" {
			return out, nil
		}
		for _, f := range strings.Split(s, ",") {
			d, err := strconv.Atoi(f)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("plan: subspace key %q: bad dimension %q", key, f)
			}
			out = append(out, d)
		}
		return out, nil
	}
	if keptTO, err = parse(toPart); err != nil {
		return nil, nil, err
	}
	if keptPO, err = parse(poPart); err != nil {
		return nil, nil, err
	}
	return keptTO, keptPO, nil
}
