package plan

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// MemoCache is a ready-made Cache: an atomically published memo of the
// full skyline of one immutable row set, plus a keyed memo of subspace
// skylines (one entry per kept-dimension set). The serving layer binds
// one to each table snapshot; tss.Table.SetQueryCache accepts one
// directly. Concurrent racing Puts are benign — for any given key every
// writer stores the same skyline set, because the row set the memo
// describes never changes.
type MemoCache struct {
	full atomic.Pointer[[]int32]

	mu  sync.RWMutex
	sub map[string][]int32 // kept-dimension key -> subspace skyline
}

// NewMemoCache returns an empty memo.
func NewMemoCache() *MemoCache { return &MemoCache{} }

// GetFull returns the memoised full skyline, if any.
func (c *MemoCache) GetFull() ([]int32, bool) {
	if ids := c.full.Load(); ids != nil {
		return *ids, true
	}
	return nil, false
}

// PutFull publishes the full skyline. The caller must not mutate ids
// afterwards.
func (c *MemoCache) PutFull(ids []int32) { c.full.Store(&ids) }

// GetSubspace returns the memoised skyline of the kept-dimension set
// named by key (see SubspaceKey), if any.
func (c *MemoCache) GetSubspace(key string) ([]int32, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids, ok := c.sub[key]
	return ids, ok
}

// PutSubspace memoises the skyline of one kept-dimension set. The
// caller must not mutate ids afterwards. Entries are never evicted —
// a table has few queried subspaces and the memo dies with its
// snapshot (the serving layer attaches a fresh one per publish).
func (c *MemoCache) PutSubspace(key string, ids []int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sub == nil {
		c.sub = make(map[string][]int32)
	}
	c.sub[key] = ids
}

// SubspaceKey canonically names a kept-dimension set — the memo key of
// subspace entries and the Learned skyline-fraction variant key. The
// dimension lists must be in Validate's canonical form (ascending,
// duplicate-free); nil yields FullVariant.
func SubspaceKey(s *Subspace) string {
	if s == nil {
		return FullVariant
	}
	var b strings.Builder
	b.WriteString("to:")
	for i, d := range s.TO {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteString("|po:")
	for i, d := range s.PO {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	return b.String()
}
