package plan

import "sync/atomic"

// MemoCache is a ready-made Cache: an atomically published memo of the
// full skyline of one immutable row set. The serving layer binds one to
// each table snapshot; tss.Table.SetQueryCache accepts one directly.
// Concurrent racing Puts are benign — every writer stores the same
// skyline set.
type MemoCache struct {
	full atomic.Pointer[[]int32]
}

// NewMemoCache returns an empty memo.
func NewMemoCache() *MemoCache { return &MemoCache{} }

// GetFull returns the memoised full skyline, if any.
func (c *MemoCache) GetFull() ([]int32, bool) {
	if ids := c.full.Load(); ids != nil {
		return *ids, true
	}
	return nil, false
}

// PutFull publishes the full skyline. The caller must not mutate ids
// afterwards.
func (c *MemoCache) PutFull(ids []int32) { c.full.Store(&ids) }
