package plan

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/poset"
)

// Cache is the skyline result cache the executor may route through: it
// stores the skyline of the full table (all rows, all dimensions) plus
// one entry per queried subspace (keyed by SubspaceKey), all describing
// the table state the cache belongs to. Implementations must be safe
// for concurrent use; the serving layer binds one to each immutable
// snapshot.
// Gets additionally report whether the entry was produced by delta
// maintenance (MemoCache.Advance) rather than a cold compute on this
// row set — explain output surfaces the distinction as the
// "maintained" route flavour.
type Cache interface {
	GetFull() (ids []int32, maintained, ok bool)
	PutFull([]int32)
	GetSubspace(key string) (ids []int32, maintained, ok bool)
	PutSubspace(key string, ids []int32)
}

// ScoreIndexCache is the optional capability (probed by interface
// assertion, so existing Cache implementations keep working) of a cache
// that also persists the table's dp-idp score index. MemoCache
// implements it and advances the index across mutations.
type ScoreIndexCache interface {
	GetScoreIndex() (*core.ScoreIndex, bool)
	PutScoreIndex(*core.ScoreIndex)
}

// Env is the planning context: the table's statistics, the feedback
// store, and an optional full-skyline cache. All fields may be nil —
// Stats is computed on the fly, feedback is dropped, no cache routing.
type Env struct {
	Stats   *Stats
	Learned *Learned
	Cache   Cache
}

// Candidate is one algorithm the planner costed, for explain output.
type Candidate struct {
	Name       string  `json:"name"`
	EstSeconds float64 `json:"estSeconds"`
}

// Explain is the JSON-ready account of a planning decision, attached to
// query responses and printed by the CLIs' -explain flags. Observed*
// fields are filled in by the executor after the run.
type Explain struct {
	Variant      string      `json:"variant"`
	Algorithm    string      `json:"algorithm"`
	Forced       bool        `json:"forced,omitempty"`
	Parallelism  int         `json:"parallelism,omitempty"`
	Route        Route       `json:"route"`
	RouteReason  string      `json:"routeReason,omitempty"`
	AntiMonotone bool        `json:"antiMonotone,omitempty"`
	EstRows      int         `json:"estimatedRows"`
	EstSkyline   int         `json:"estimatedSkyline"`
	EstSeconds   float64     `json:"estimatedSeconds"`
	SkyFracFrom  string      `json:"skylineFracSource"`
	Candidates   []Candidate `json:"candidates,omitempty"`
	CacheHit     bool        `json:"cacheHit,omitempty"`
	// Maintained reports that the cache entry this plan serves from was
	// carried across mutations by delta maintenance rather than computed
	// cold on this row set.
	Maintained bool `json:"maintained,omitempty"`
	// RankedFrom reports where a ranked top-k's scores came from:
	// "index" (the maintained per-table score index), "memo" (scored
	// over a memoised skyline) or "cold" (scored over a freshly
	// computed skyline). Empty for unranked queries.
	RankedFrom string `json:"rankedFrom,omitempty"`
	// Kernel names the dominance-kernel configuration the run's
	// elimination loops use: "bitset+columnar" (closure bitsets fit the
	// memory budget on every kept PO domain), "columnar" (columnar scans
	// with interval/ordinal fallback per dominance test), or "interval"
	// (Hints.NoKernel scalar reference path).
	Kernel string `json:"kernel,omitempty"`

	// ObservedRows counts the rows the executor actually fed an
	// algorithm (0 on cache hits) — compare with EstRows to judge the
	// selectivity estimate.
	ObservedSeconds float64 `json:"observedSeconds"`
	ObservedRows    int     `json:"observedRows"`
	ObservedSkyline int     `json:"observedSkyline"`
}

// Plan is a physical execution plan: the logical query plus every
// decision the optimizer made. Plans are single-use — Run fills the
// Explain's observed fields.
type Plan struct {
	Query   Query
	Explain Explain

	algo      core.Algorithm
	shards    int // partition-and-merge shard count; 0 = sequential
	route     Route
	earlyExit bool    // RouteCursor: stop the progressive cursor after TopK
	cached    []int32 // full or subspace skyline served from Env.Cache, nil on miss
	keptTO    []int   // resolved subspace (identity when Query.Subspace == nil)
	keptPO    []int
	// baseVariant is the kept-dimension key (SubspaceKey) — the memo +
	// learned-frac key of the *unrestricted* skyline this query shape
	// derives from; variant appends the weight-constraint suffix for
	// restricted queries and equals baseVariant otherwise. Unrestricted
	// feedback and cache writes use baseVariant so a restricted
	// workload never pollutes the unrestricted EWMAs, while the
	// restricted result memoises and learns under variant.
	baseVariant string
	variant     string
	fvtx        [][]float64 // restriction vertices (kept order), nil when unrestricted
	// cachedRestricted marks p.cached as an already-restricted memo
	// entry — the executor's restriction stage is skipped.
	cachedRestricted bool
	estRows          int
	estSky           int
	predBase         float64   // static model prediction before the learned multiplier
	prior            costPrior // chosen algorithm's model, for observation-time feedback

	cursorRows int // rows the cursor route indexed (observed-rows reporting)
}

// costPrior is the static cost model of one algorithm:
//
//	seconds ≈ (A·n·log2(n) + B·(1 + POB·p)·n·m) × 1e-9
//
// with n input rows, m skyline rows and p partially ordered dimensions.
// A carries the per-row work (sorting, index bulk-load, topological
// preprocessing), B the pairwise dominance work that survives the
// algorithm's pruning, and POB how much a PO dimension inflates one
// dominance check (interval probes instead of integer compares; sTSS's
// in-memory dominance tree makes it by far the most PO-sensitive in
// wall-clock terms). Calibrated against measured wall-clock at n=20k
// (`tssbench -fig plan`); deliberately rough — Learned.CostMultiplier
// corrects each algorithm per table from observed runs.
type costPrior struct{ A, B, POB float64 }

var costPriors = map[string]costPrior{
	"stss":  {A: 25, B: 3.5, POB: 20},
	"bbs+":  {A: 40, B: 5, POB: 1},
	"sdc":   {A: 30, B: 4, POB: 0.9},
	"sdc+":  {A: 30, B: 2.8, POB: 0.6},
	"bnl":   {A: 5, B: 3, POB: 0.75},
	"sfs":   {A: 8, B: 2.5, POB: 0.5},
	"salsa": {A: 10, B: 2.2},
	"less":  {A: 8, B: 1.2},
}

// defaultPrior covers algorithms registered after this model was
// calibrated.
var defaultPrior = costPrior{A: 30, B: 3, POB: 1}

// modelSeconds evaluates the static cost model.
func (c costPrior) modelSeconds(n, m, effPO int) float64 {
	if n <= 0 {
		return 0
	}
	fn, fm := float64(n), float64(m)
	return (c.A*fn*math.Log2(fn+2) + c.B*(1+c.POB*float64(effPO))*fn*fm) * 1e-9
}

// parallelMinRows is the input size below which the partition-and-merge
// executor's fixed overhead outweighs its speedup.
const parallelMinRows = 20_000

// New plans q against ds. The returned plan is ready to Run; its
// Explain describes every decision (before observation fields).
func New(ds *core.Dataset, q Query, env Env) (*Plan, error) {
	sizes := make([]int, len(ds.Domains))
	for d, dom := range ds.Domains {
		sizes[d] = dom.Size()
	}
	if err := q.Validate(ds.NumTO(), ds.NumPO(), sizes); err != nil {
		return nil, err
	}
	stats := env.Stats
	if stats == nil {
		stats = Analyze(ds)
	}

	p := &Plan{Query: q, Explain: Explain{Variant: q.Variant()}}
	p.keptTO, p.keptPO = resolveSubspace(q.Subspace, ds.NumTO(), ds.NumPO())
	p.baseVariant = SubspaceKey(q.Subspace)
	p.variant = p.baseVariant
	if len(q.FWeights) > 0 {
		p.fvtx = FVertices(q.FWeights, p.keptTO)
		p.variant = p.baseVariant + "|" + fweightsKey(q.FWeights, p.keptTO)
	}

	// Route: push-down is the definition; post-filter needs the
	// anti-monotonicity proof and pays off only when the full skyline is
	// already cached (the filtered run reads fewer rows otherwise).
	antiMono, proofReason := allAntiMonotone(ds, q)
	p.Explain.AntiMonotone = antiMono
	useCache := env.Cache != nil && !q.Hints.NoCache
	var cachedFull []int32
	cacheHas := false
	cacheMaint := false
	if useCache && q.Subspace == nil {
		cachedFull, cacheMaint, cacheHas = env.Cache.GetFull()
	}
	switch {
	case len(q.Where) == 0:
		p.route = RouteDirect
		restrictedHit := false
		if p.fvtx != nil && useCache {
			// Restricted results memoise under their weight-suffixed key;
			// a miss still reuses the unrestricted base entry below as
			// elimination input (ND ⊆ SKY).
			if ids, maint, ok := env.Cache.GetSubspace(p.variant); ok {
				p.cached = ids
				p.cachedRestricted = true
				p.Explain.Maintained = maint
				p.Explain.RouteReason = fmt.Sprintf("restricted skyline cached (key %s)", p.variant)
				restrictedHit = true
			}
		}
		switch {
		case restrictedHit:
		case q.Subspace == nil && cacheHas:
			p.cached = cachedFull
			p.Explain.Maintained = cacheMaint
			if cacheMaint {
				p.Explain.RouteReason = "full skyline maintained across mutations"
			} else {
				p.Explain.RouteReason = "full skyline cached"
			}
		case q.Subspace != nil && useCache:
			// Subspace-keyed memo: repeated subspace queries on the same
			// snapshot are served without recomputation, exactly like
			// repeated full queries.
			if ids, maint, ok := env.Cache.GetSubspace(p.baseVariant); ok {
				p.cached = ids
				p.Explain.Maintained = maint
				if maint {
					p.Explain.RouteReason = fmt.Sprintf("subspace skyline maintained across mutations (key %s)", p.baseVariant)
				} else {
					p.Explain.RouteReason = fmt.Sprintf("subspace skyline cached (key %s)", p.baseVariant)
				}
			}
		}
	case q.Hints.Route == RoutePostFilter:
		if !antiMono {
			return nil, fmt.Errorf("plan: post-filter route forced but not provably sound (%s)", proofReason)
		}
		if q.Subspace != nil {
			return nil, fmt.Errorf("plan: post-filter route needs the full-dimensional skyline; a subspace query cannot use it")
		}
		p.route = RoutePostFilter
		p.Explain.RouteReason = "forced by hint"
		if cacheHas {
			p.cached = cachedFull
			p.Explain.Maintained = cacheMaint
		}
	case q.Hints.Route == RoutePushdown:
		p.route = RoutePushdown
		p.Explain.RouteReason = "forced by hint"
	case antiMonotoneUsable(q, antiMono) && cacheHas:
		p.route = RoutePostFilter
		p.cached = cachedFull
		p.Explain.Maintained = cacheMaint
		if cacheMaint {
			p.Explain.RouteReason = "predicates anti-monotone and full skyline maintained across mutations"
		} else {
			p.Explain.RouteReason = "predicates anti-monotone and full skyline cached"
		}
	default:
		p.route = RoutePushdown
		if antiMono {
			p.Explain.RouteReason = "anti-monotone but no cached skyline: filtering first reads fewer rows"
		} else {
			p.Explain.RouteReason = proofReason
		}
	}

	// Cardinality estimates. The post-filter route runs the algorithm
	// (when the cache misses) over the whole table.
	n := stats.Rows
	sel := selectivity(stats, q.Where)
	p.estRows = n
	if p.route == RoutePushdown {
		p.estRows = int(math.Ceil(sel * float64(n)))
	}
	frac, fracSrc := skylineFrac(stats, env.Learned, p.variant, len(p.keptTO)+len(p.keptPO))
	p.Explain.SkyFracFrom = fracSrc
	p.estSky = int(math.Ceil(frac * float64(p.estRows)))
	if p.estSky < 1 && p.estRows > 0 {
		p.estSky = 1
	}

	// Unranked top-k on a progressive algorithm never needs the full
	// skyline: the sTSS cursor stops after K certified emissions
	// (optimal progressiveness, paper §IV). Not applicable when the
	// post-filter route would discard an unknown number of results, and
	// skipped when the caller forced a shard count — the cursor is
	// sequential, so honoring the hint means running the full
	// partition-and-merge pass and truncating.
	// A restricted query can never stop early: the weight-constraint
	// elimination needs every skyline member before TopK truncates.
	hinted := strings.ToLower(q.Hints.Algorithm)
	p.earlyExit = q.TopK > 0 && q.Rank == RankNone && len(q.FWeights) == 0 &&
		p.route != RoutePostFilter &&
		p.cached == nil && q.Hints.Parallelism <= 0 && (hinted == "" || hinted == "stss")

	// Dominance-kernel selection, reported up front so Explain shows
	// which elimination path the run will take and so the cost model can
	// discount PO dominance work when the closure bitsets apply.
	p.Explain.Kernel = kernelLabel(ds, p.keptPO, q.Hints.NoKernel)

	// Algorithm choice: capability-gated cost minimization, unless
	// forced. A projection that drops every PO column widens the field
	// to the TO-only sort-based algorithms.
	effPO := len(p.keptPO)
	if err := p.chooseAlgorithm(env.Learned, effPO, hinted); err != nil {
		return nil, err
	}

	// Rankings that declare their own cost-model term (RankCoster) add
	// it to the estimate; the classic rankings predate the term and
	// keep their historical estimates.
	if q.TopK > 0 && q.Rank != RankNone {
		if r, ok := LookupRanker(string(q.Rank)); ok {
			if rc, ok := r.(RankCoster); ok {
				p.Explain.EstSeconds += rc.RankCostSeconds(p.estRows, p.estSky, q.TopK)
			}
		}
	}

	// Parallelism: the partition-and-merge executor pays off on large
	// inputs on multi-core hosts; it is pure overhead for cursor runs
	// (which stop early) and cache hits.
	switch {
	case q.Hints.Parallelism > 0:
		p.shards = q.Hints.Parallelism
	case q.Hints.Parallelism < 0:
		p.shards = 0
	case p.earlyExit || p.cached != nil:
		p.shards = 0
	case runtime.GOMAXPROCS(0) > 1 && p.estRows >= parallelMinRows:
		p.shards = runtime.GOMAXPROCS(0)
	}

	p.Explain.Route = p.route
	if p.earlyExit {
		p.Explain.Route = RouteCursor
	}
	p.Explain.Parallelism = p.shards
	p.Explain.EstRows = p.estRows
	p.Explain.EstSkyline = p.estSky
	p.Explain.CacheHit = p.cached != nil
	return p, nil
}

// kernelLabel names the dominance-kernel configuration a run over the
// kept PO columns will use. The bitset leg applies only when the
// transitive-closure bitset of every kept PO domain fits the default
// memory budget; otherwise the columnar loops fall back to interval or
// ordinal dominance tests per probe.
func kernelLabel(ds *core.Dataset, keptPO []int, noKernel bool) string {
	if noKernel {
		return "interval"
	}
	if len(keptPO) == 0 {
		return "columnar"
	}
	for _, d := range keptPO {
		if !ds.Domains[d].ClosureFits(poset.DefaultClosureBudget) {
			return "columnar"
		}
	}
	return "bitset+columnar"
}

// bitsetPOBScale discounts the cost model's per-PO-dimension dominance
// inflation when the bitset closure kernel applies: a t-preference test
// collapses from an interval probe to a single word test (calibrated
// against the kernel benchmarks; see BENCH_kernel.json).
const bitsetPOBScale = 0.25

// scaledPrior adapts an algorithm's static cost model to the selected
// dominance kernel.
func (p *Plan) scaledPrior(prior costPrior) costPrior {
	if p.Explain.Kernel == "bitset+columnar" {
		prior.POB *= bitsetPOBScale
	}
	return prior
}

// chooseAlgorithm fills p.algo, p.predBase and the explain candidate
// table.
func (p *Plan) chooseAlgorithm(learned *Learned, effPO int, hinted string) error {
	if hinted != "" {
		a, ok := core.Lookup(hinted)
		if !ok {
			return fmt.Errorf("plan: unknown algorithm %q (have: %s)",
				p.Query.Hints.Algorithm, strings.Join(core.AlgorithmNames(), ", "))
		}
		p.algo = a
		prior, ok := costPriors[a.Name()]
		if !ok {
			prior = defaultPrior
		}
		prior = p.scaledPrior(prior)
		p.prior = prior
		p.predBase = prior.modelSeconds(p.estRows, p.estSky, effPO)
		p.Explain.Algorithm = a.Name()
		p.Explain.Forced = true
		p.Explain.EstSeconds = p.predBase * learned.CostMultiplier(a.Name())
		return nil
	}
	var best core.Algorithm
	var bestPrior costPrior
	var bestEst, bestBase float64
	for _, a := range core.Algorithms() {
		if effPO > 0 && !a.Capabilities().POCapable {
			continue
		}
		prior, ok := costPriors[a.Name()]
		if !ok {
			prior = defaultPrior
		}
		prior = p.scaledPrior(prior)
		base := prior.modelSeconds(p.estRows, p.estSky, effPO)
		est := base * learned.CostMultiplier(a.Name())
		p.Explain.Candidates = append(p.Explain.Candidates, Candidate{Name: a.Name(), EstSeconds: est})
		if best == nil || est < bestEst {
			best, bestEst, bestBase, bestPrior = a, est, base, prior
		}
	}
	if best == nil {
		return fmt.Errorf("plan: no capable algorithm registered")
	}
	// The cursor route is sTSS-specific: prefer it for unranked top-k
	// even when another algorithm models cheaper on a full run, since
	// the cursor only pays for the first K emissions.
	if p.earlyExit {
		best = core.MustLookup("stss")
		bestPrior = p.scaledPrior(costPriors["stss"])
		bestBase = bestPrior.modelSeconds(p.estRows, p.estSky, effPO)
		frac := 1.0
		if p.estSky > p.Query.TopK && p.estSky > 0 {
			frac = float64(p.Query.TopK) / float64(p.estSky)
		}
		bestEst = bestBase * learned.CostMultiplier("stss") * frac
	}
	p.algo = best
	p.prior = bestPrior
	p.predBase = bestBase
	p.Explain.Algorithm = best.Name()
	p.Explain.EstSeconds = bestEst
	return nil
}

// resolveSubspace expands a nil subspace to the identity dimension
// lists.
func resolveSubspace(s *Subspace, nTO, nPO int) (to, po []int) {
	if s == nil {
		to = make([]int, nTO)
		for i := range to {
			to[i] = i
		}
		po = make([]int, nPO)
		for i := range po {
			po[i] = i
		}
		return to, po
	}
	return append([]int(nil), s.TO...), append([]int(nil), s.PO...)
}

// allAntiMonotone proves (or refutes) that every predicate is closed
// under dominance: any row dominating a satisfying row also satisfies.
//
//   - A TO range is anti-monotone iff it has no lower bound: dominators
//     have values ≤ the satisfying row's (smaller is better), which can
//     escape below a lower bound but never above an upper one.
//   - A PO value set is anti-monotone iff it is upward closed under the
//     table's preference order: for every allowed value, every value
//     t-preferred to it is allowed too. Checked exhaustively against
//     the domain (|In| × |domain| TPrefers probes on the precomputed
//     interval encoding).
func allAntiMonotone(ds *core.Dataset, q Query) (bool, string) {
	for i, pr := range q.Where {
		switch pr.Kind {
		case TORange:
			if pr.HasLo {
				return false, fmt.Sprintf("predicate %d has a lower bound (a dominator may fall below it)", i)
			}
		case POIn:
			dom := ds.Domains[pr.Dim]
			allowed := make(map[int32]bool, len(pr.In))
			for _, v := range pr.In {
				allowed[v] = true
			}
			for _, v := range pr.In {
				for w := int32(0); int(w) < dom.Size(); w++ {
					if !allowed[w] && dom.TPrefers(w, v) {
						return false, fmt.Sprintf(
							"predicate %d: value %d is preferred to allowed value %d but excluded", i, w, v)
					}
				}
			}
		}
	}
	return true, ""
}

// antiMonotoneUsable gates the post-filter route: besides the proof,
// the cached/derived full skyline is full-dimensional, so a subspace
// query cannot use it.
func antiMonotoneUsable(q Query, antiMono bool) bool {
	return antiMono && q.Subspace == nil
}

// selectivity estimates the fraction of rows surviving the predicates,
// assuming per-column uniformity and independence across predicates.
func selectivity(stats *Stats, where []Predicate) float64 {
	sel := 1.0
	for _, pr := range where {
		switch pr.Kind {
		case TORange:
			if pr.Dim >= len(stats.TO) {
				continue
			}
			c := stats.TO[pr.Dim]
			span := float64(c.Max-c.Min) + 1
			if span <= 0 {
				continue
			}
			lo, hi := float64(c.Min), float64(c.Max)
			if pr.HasLo && float64(pr.Lo) > lo {
				lo = float64(pr.Lo)
			}
			if pr.HasHi && float64(pr.Hi) < hi {
				hi = float64(pr.Hi)
			}
			s := (hi - lo + 1) / span
			sel *= clamp01(s)
		case POIn:
			if pr.Dim >= len(stats.PO) {
				continue
			}
			size := stats.PO[pr.Dim].DomainSize
			if size > 0 {
				sel *= clamp01(float64(len(pr.In)) / float64(size))
			}
		}
	}
	return clamp01(sel)
}

// skylineFrac estimates |skyline|/n: the variant's observed EWMA when
// available, otherwise a correlation-sign default scaled by
// dimensionality. Each variant (kept-dimension set) learns its own
// fraction — a 2-dim subspace skyline and the full skyline of the same
// table differ by orders of magnitude, so sharing one EWMA across a
// mixed workload would misestimate both.
func skylineFrac(stats *Stats, learned *Learned, variant string, dims int) (float64, string) {
	if f, ok := learned.SkylineFrac(variant); ok {
		return clampFrac(f), "observed"
	}
	var f float64
	switch {
	case stats.CorrSign < -0.15:
		f = 0.10
	case stats.CorrSign > 0.15:
		f = 0.005
	default:
		f = 0.02
	}
	if dims > 2 {
		f *= 1 + 0.5*float64(dims-2)
	}
	return clampFrac(f), "correlation-default"
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clampFrac(f float64) float64 {
	if f < 1e-4 {
		return 1e-4
	}
	if f > 1 {
		return 1
	}
	return f
}
