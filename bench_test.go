package tss

// One testing.B benchmark per table/figure of the paper's evaluation,
// plus micro-benchmarks for the substrate operations. Each figure bench
// runs the full parameter sweep at a laptop-sized scale and reports the
// aggregate simulated total time of both contenders as custom metrics
// (sdc_total_s, tss_total_s, speedup_x) — the numbers EXPERIMENTS.md
// records against the paper. `cmd/tssbench -scale 1` reproduces the
// full-size sweeps.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/exp"
	"repro/internal/poset"
	"repro/internal/rtree"
)

// benchScale keeps the full bench suite minutes-sized; the sweeps'
// *shapes* (who wins, how the gap moves with each parameter) are scale
// invariant.
const benchScale = 0.002

func reportPair(b *testing.B, rows []exp.Row) {
	var sdc, tss float64
	for _, r := range rows {
		switch r.Series {
		case "SDC+":
			sdc += r.TotalSec
		case "TSS":
			tss += r.TotalSec
		}
	}
	b.ReportMetric(sdc, "sdc_total_s")
	b.ReportMetric(tss, "tss_total_s")
	if tss > 0 {
		b.ReportMetric(sdc/tss, "speedup_x")
	}
}

// BenchmarkTableI runs the paper's introductory example (both partial
// orders) through the public API.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1 := flightsTable(order1())
		if len(t1.Skyline()) != 5 {
			b.Fatal("Table I first order: wrong skyline")
		}
		t2 := flightsTable(NewOrder("a", "b", "c", "d").Prefer("b", "a"))
		if len(t2.Skyline()) != 6 {
			b.Fatal("Table I second order: wrong skyline")
		}
	}
}

// BenchmarkTableII runs the §IV-A worked example: the 13-point data set
// over the Figure 2 domain with node capacity 3.
func BenchmarkTableII(b *testing.B) {
	// Figure 2 domain through the public API.
	order := NewOrder("a", "b", "c", "d", "e", "f", "g", "h", "i")
	for _, e := range [][2]string{
		{"a", "b"}, {"b", "c"}, {"b", "d"}, {"b", "e"}, {"c", "f"}, {"d", "g"},
		{"g", "h"}, {"g", "i"}, {"a", "c"}, {"c", "g"}, {"e", "g"}, {"f", "h"},
	} {
		order.Prefer(e[0], e[1])
	}
	table := NewTable([]string{"a1"}, order)
	for _, r := range []struct {
		a1 int64
		v  string
	}{
		{2, "c"}, {3, "d"}, {1, "h"}, {8, "a"}, {6, "e"}, {7, "c"}, {9, "b"},
		{4, "i"}, {2, "f"}, {3, "g"}, {5, "g"}, {7, "f"}, {9, "h"},
	} {
		table.MustAdd([]int64{r.a1}, r.v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := table.Skyline(); len(got) != 5 {
			b.Fatalf("Table II skyline = %v", got)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportPair(b, exp.Figure7(benchScale))
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportPair(b, exp.Figure8(benchScale))
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportPair(b, exp.Figure9(benchScale))
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportPair(b, exp.Figure10(benchScale))
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Figure11(benchScale * 5)
		// Report the paper's headline: time to 50% of the results.
		var sdc50, tss50 float64
		for _, r := range rows {
			if r.Pct == 50 && r.Figure == "11b" {
				if r.Series == "SDC+" {
					sdc50 = r.Sec
				} else {
					tss50 = r.Sec
				}
			}
		}
		b.ReportMetric(sdc50, "sdc_50pct_s")
		b.ReportMetric(tss50, "tss_50pct_s")
		if tss50 > 0 {
			b.ReportMetric(sdc50/tss50, "progressiveness_x")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportPair(b, exp.Figure12(benchScale))
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportPair(b, exp.Figure13(benchScale))
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportPair(b, exp.Figure14(benchScale))
	}
}

// BenchmarkAblations measures the sTSS/dTSS optimisation variants.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Ablations(benchScale * 5)
		for _, r := range rows {
			b.ReportMetric(r.TotalSec, r.Series+"_s")
		}
	}
}

// BenchmarkParallel compares sequential sTSS against the partition-and-
// merge executor (P ∈ {2, 4, 8} shards) on n=100K datasets of each TO
// distribution — the engine's headline speedup measurement. On hosts
// with ≥4 cores the parallel variants win wall-clock; BENCH_parallel.json
// records a run.
func BenchmarkParallel(b *testing.B) {
	stss := core.MustLookup("stss")
	for _, dist := range []data.Distribution{data.Correlated, data.Independent, data.AntiCorrelated} {
		cfg := exp.StaticDefaults(0.1) // N = 100K
		cfg.Dist = dist
		ds := exp.BuildDataset(cfg)
		b.Run(dist.String()+"/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := stss.Run(ds, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(res.SkylineIDs)), "skyline")
			}
		})
		for _, p := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/par%d", dist, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := core.Parallel(stss).Run(ds, core.Options{Parallelism: p})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(len(res.SkylineIDs)), "skyline")
				}
			})
		}
	}
}

// kernelMergeFixture splits a dataset round-robin into shard-local
// skylines — the exact candidate shape the cluster coordinator's merge
// pass receives.
func kernelMergeFixture(ds *core.Dataset, shards int) ([]core.Point, []int) {
	var pts []core.Point
	var tags []int
	for s := 0; s < shards; s++ {
		sub := &core.Dataset{Domains: ds.Domains}
		for i := s; i < len(ds.Pts); i += shards {
			sub.Pts = append(sub.Pts, ds.Pts[i])
		}
		member := map[int32]bool{}
		for _, id := range core.BNL(sub, core.Options{}).SkylineIDs {
			member[id] = true
		}
		for _, p := range sub.Pts {
			if member[p.ID] {
				pts = append(pts, p)
				tags = append(tags, s)
			}
		}
	}
	return pts, tags
}

// BenchmarkKernel measures the dominance kernel (bitset closure +
// columnar loops + block zone maps) against the scalar reference path
// on the paper-shaped N=50K cells: the BNL window scan end to end and
// the cross-shard merge elimination pass. Both variants of each pair
// compute identical results (enforced by FuzzSkylineAgreement and
// TestMergeSurvivorsKernelMatchesRef); BENCH_kernel.json records a run.
func BenchmarkKernel(b *testing.B) {
	for _, dist := range []data.Distribution{data.Independent, data.AntiCorrelated} {
		cfg := exp.StaticDefaults(0.05) // N = 50K
		cfg.Dist = dist
		ds := exp.BuildDataset(cfg)
		for _, v := range []struct {
			name string
			opt  core.Options
		}{
			{"bnl/kernel", core.Options{}},
			{"bnl/scalar", core.Options{NoKernel: true}},
		} {
			b.Run(dist.String()+"/"+v.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := core.BNL(ds, v.opt)
					b.ReportMetric(float64(len(res.SkylineIDs)), "skyline")
				}
			})
		}
		pts, tags := kernelMergeFixture(ds, 4)
		b.Run(dist.String()+"/merge/kernel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := core.MergeSurvivors(ds.Domains, pts, tags, 1)
				b.ReportMetric(float64(len(out)), "survivors")
			}
		})
		b.Run(dist.String()+"/merge/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := core.MergeSurvivorsRef(ds.Domains, pts, tags, 1)
				b.ReportMetric(float64(len(out)), "survivors")
			}
		})
	}
}

// --- substrate micro-benchmarks ---------------------------------------------

func benchDomain(h int, d float64) *poset.Domain {
	rng := rand.New(rand.NewSource(3))
	return poset.MustDomain(data.Lattice(rng, h, d))
}

// BenchmarkDomainBuild measures the per-query preprocessing cost of
// dTSS: topological sort, spanning tree, interval propagation.
func BenchmarkDomainBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	dag := data.Lattice(rng, 8, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := poset.NewDomain(dag); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTPreference measures the exact stabbing check against the
// paper-literal ∀-interval containment check.
func BenchmarkTPreference(b *testing.B) {
	dm := benchDomain(8, 0.8)
	n := dm.Size()
	b.Run("stab", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := int32(i % n)
			y := int32((i % n * 7) % n)
			_ = dm.TPrefers(x, y)
		}
	})
	b.Run("containment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := int32(i % n)
			y := int32((i % n * 7) % n)
			_ = dm.TPrefersContainment(x, y)
		}
	})
}

// BenchmarkOrdRangeIntervals measures MBB interval lookup with and
// without the dyadic index (§IV-B first optimisation).
func BenchmarkOrdRangeIntervals(b *testing.B) {
	plain := benchDomain(8, 0.8)
	indexed := benchDomain(8, 0.8)
	indexed.EnableDyadic()
	n := int32(plain.Size())
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := int32(i) % (n / 2)
			_ = plain.OrdRangeIntervals(lo, lo+n/2)
		}
	})
	b.Run("dyadic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := int32(i) % (n / 2)
			_ = indexed.OrdRangeIntervals(lo, lo+n/2)
		}
	})
}

// BenchmarkRTree measures the index substrate: bulk load and boolean
// range queries.
func BenchmarkRTree(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]rtree.Point, 50_000)
	for i := range pts {
		pts[i] = rtree.Point{
			Coords: []int32{int32(rng.Intn(10_000)), int32(rng.Intn(10_000)), int32(rng.Intn(256))},
			ID:     int32(i),
		}
	}
	b.Run("bulkload-50k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = rtree.BulkLoad(3, append([]rtree.Point(nil), pts...), 128, nil)
		}
	})
	tr := rtree.BulkLoad(3, append([]rtree.Point(nil), pts...), 128, nil)
	b.Run("boolrange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := []int32{int32(i % 5000), int32(i % 5000), 0}
			hi := []int32{lo[0] + 200, lo[1] + 200, 255}
			_ = tr.RangeNonEmpty(lo, hi)
		}
	})
}

// BenchmarkSTSSEndToEnd measures one default-configuration static run
// at N=10K for each checker configuration.
func BenchmarkSTSSEndToEnd(b *testing.B) {
	cfg := exp.StaticDefaults(0.01)
	cfg.Dist = data.AntiCorrelated
	ds := exp.BuildDataset(cfg)
	for _, v := range []struct {
		name string
		opt  core.Options
	}{
		{"list", core.Options{}},
		{"memtree", core.Options{UseMemTree: true}},
		{"memtree-stab", core.Options{UseMemTree: true, StabOnly: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.STSS(ds, v.opt)
				b.ReportMetric(float64(res.Metrics.DomChecks), "checks")
			}
		})
	}
}

// BenchmarkDynamicQuery measures one dTSS query (domain preprocessing
// included) against the rebuild baseline at N=10K.
func BenchmarkDynamicQuery(b *testing.B) {
	cfg := exp.DynamicDefaults(0.01)
	cfg.Dist = data.AntiCorrelated
	ds := exp.BuildDataset(cfg)
	db := core.NewDynamicDB(ds, core.Options{})
	b.Run("dTSS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			domains := exp.QueryDomains(cfg, ds, i)
			if _, err := db.QueryTSS(domains, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild-SDC+", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			domains := exp.QueryDomains(cfg, ds, i)
			if _, err := core.DynamicSDCPlus(ds, domains, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
