package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestThinClientEndToEnd drives the -serve client path against an
// in-process tssserve: upload a CSV workload, run a static query, a
// parallel one, and a dynamic per-request-DAG query.
func TestThinClientEndToEnd(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.csv")
	dagPath := filepath.Join(dir, "dag_0.txt")
	queryDAG := filepath.Join(dir, "qdag.txt")
	if err := os.WriteFile(dataPath, []byte("to_0,po_0\n10,0\n20,1\n5,2\n7,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dagPath, []byte("3\n0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(queryDAG, []byte("3\n2 0\n2 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(serve.New(4).Handler())
	defer ts.Close()

	base := clientConfig{
		baseURL: ts.URL, table: "t",
		dataPath: dataPath, dagList: dagPath,
		method: "stss", limit: 10,
	}
	if err := runClient(base); err != nil {
		t.Fatalf("static: %v", err)
	}
	// The table exists now; query again without re-uploading.
	par := base
	par.dataPath, par.dagList = "", ""
	par.parallel = 2
	if err := runClient(par); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	dyn := par
	dyn.parallel = 0
	dyn.queryDAGs = queryDAG
	if err := runClient(dyn); err != nil {
		t.Fatalf("dynamic: %v", err)
	}
	// Fully dynamic with an ideal point.
	ideal := dyn
	ideal.ideal = "8"
	if err := runClient(ideal); err != nil {
		t.Fatalf("ideal: %v", err)
	}
	// Errors surface: unknown table.
	missing := par
	missing.table = "nope"
	if err := runClient(missing); err == nil {
		t.Fatal("missing table must fail")
	}
	// Unreachable server.
	down := par
	down.baseURL = "http://127.0.0.1:1"
	if err := runClient(down); err == nil {
		t.Fatal("unreachable server must fail")
	}
}

// TestThinClientRejectsParallelDynamic mirrors local mode's refusal.
func TestThinClientRejectsParallelDynamic(t *testing.T) {
	err := runClient(clientConfig{
		baseURL: "http://127.0.0.1:1", queryDAGs: "q.txt", parallel: 4,
	})
	if err == nil || !strings.Contains(err.Error(), "static queries only") {
		t.Fatalf("err = %v, want static-queries-only refusal", err)
	}
}
