package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/plan"
	"repro/internal/poset"
	"repro/internal/serve"
)

func TestParseWhere(t *testing.T) {
	clauses, err := parseWhere("to_0<=500, to_1>=2 ,po_0 in 1|3")
	if err != nil {
		t.Fatal(err)
	}
	want := []whereClause{
		{col: "to_0", op: "<=", val: "500"},
		{col: "to_1", op: ">=", val: "2"},
		{col: "po_0", op: "in", val: "1|3"},
	}
	if len(clauses) != len(want) {
		t.Fatalf("got %+v", clauses)
	}
	for i := range want {
		if clauses[i] != want[i] {
			t.Fatalf("clause %d: got %+v want %+v", i, clauses[i], want[i])
		}
	}
	if _, err := parseWhere("to_0 = 5"); err == nil {
		t.Fatal("bad operator accepted")
	}
}

func TestParseCol(t *testing.T) {
	for _, tc := range []struct {
		tok  string
		dim  int
		isTO bool
	}{
		{"to_0", 0, true}, {"to1", 1, true}, {"po_0", 0, false}, {"po0", 0, false},
	} {
		dim, isTO, err := parseCol(tc.tok, 2, 1)
		if err != nil || dim != tc.dim || isTO != tc.isTO {
			t.Fatalf("parseCol(%q) = (%d, %v, %v)", tc.tok, dim, isTO, err)
		}
	}
	for _, bad := range []string{"x0", "to_9", "po_5", "to_x"} {
		if _, _, err := parseCol(bad, 2, 1); err == nil {
			t.Fatalf("parseCol(%q) accepted", bad)
		}
	}
}

// TestRunPlannedLocal drives the local planner path over the flights
// workload: constrained and subspace answers match the hand-derived
// expectations of the serve-layer tests.
func TestRunPlannedLocal(t *testing.T) {
	dir := t.TempDir()
	dagPath := writeFile(t, dir, "dag.txt", "4\n0 1\n0 2\n1 3\n2 3\n")
	dag, err := data.ReadDAGFile(dagPath)
	if err != nil {
		t.Fatal(err)
	}
	dom, err := poset.NewDomain(dag)
	if err != nil {
		t.Fatal(err)
	}
	csv := "to_0,to_1,po_0\n" +
		"1800,0,0\n2000,0,0\n1800,0,1\n1200,1,1\n1400,1,0\n" +
		"1000,1,1\n1000,1,3\n1800,1,2\n500,2,3\n1200,2,2\n"
	ds, err := data.ReadCSVDataset(writeFile(t, dir, "data.csv", csv), []*poset.Domain{dom})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		pf   planFlags
		want []int32
	}{
		{"constrained", planFlags{where: "to_0<=1200"}, []int32{5, 8, 9}},
		{"po-in", planFlags{where: "po_0 in 0|1"}, []int32{0, 4, 5}},
		{"subspace", planFlags{subspace: "to_0"}, []int32{8}},
		{"explain", planFlags{where: "to_0<=1200", explain: true}, []int32{5, 8, 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := runPlanned(ds, tc.pf, "", 0, "")
			if err != nil {
				t.Fatal(err)
			}
			got := append([]int32(nil), res.SkylineIDs...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(tc.want) {
				t.Fatalf("rows %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("rows %v, want %v", got, tc.want)
				}
			}
		})
	}

	// Ranked top-k matches the plan oracle.
	pf := planFlags{topk: 2, rank: "domcount"}
	res, err := runPlanned(ds, pf, "", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Naive(ds, plan.Query{TopK: 2, Rank: plan.RankDomCount})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkylineIDs) != len(want) || res.SkylineIDs[0] != want[0] || res.SkylineIDs[1] != want[1] {
		t.Fatalf("topk: got %v want %v", res.SkylineIDs, want)
	}

	// -ideal without -rank ideal is refused.
	if _, err := runPlanned(ds, planFlags{topk: 1}, "", 0, "5,5"); err == nil {
		t.Fatal("-ideal without -rank ideal accepted")
	}
}

// TestThinClientPlanQuery drives the planner flags end-to-end through
// the HTTP client against a live server.
func TestThinClientPlanQuery(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.csv")
	dagPath := filepath.Join(dir, "dag_0.txt")
	if err := os.WriteFile(dataPath, []byte("to_0,po_0\n10,0\n20,1\n5,2\n7,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dagPath, []byte("3\n0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(4).Handler())
	defer ts.Close()

	base := clientConfig{
		baseURL: ts.URL, table: "t",
		dataPath: dataPath, dagList: dagPath, limit: 10,
	}
	base.plan = planFlags{where: "to_0<=9", explain: true}
	if err := runClient(base); err != nil {
		t.Fatalf("constrained: %v", err)
	}
	again := base
	again.dataPath, again.dagList = "", ""
	again.plan = planFlags{subspace: "to_0,po_0", topk: 2, rank: "domcount"}
	if err := runClient(again); err != nil {
		t.Fatalf("subspace+topk: %v", err)
	}
	// Server-side validation surfaces as a client error.
	bad := again
	bad.plan = planFlags{where: "bogus<=1"}
	if err := runClient(bad); err == nil {
		t.Fatal("unknown column accepted")
	}
}
