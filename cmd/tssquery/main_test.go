package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/poset"
	"repro/internal/store"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadDAG(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "dag.txt", "4\n0 1\n0 2\n# comment\n1 3\n2 3\n")
	dag, err := data.ReadDAGFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dag.N() != 4 || dag.Edges() != 4 {
		t.Fatalf("N=%d edges=%d", dag.N(), dag.Edges())
	}
	if err := dag.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDAGErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty.txt":    "",
		"badcount.txt": "x\n",
		"badedge.txt":  "2\n0 zero\n",
		"oob.txt":      "2\n0 5\n",
	} {
		path := writeFile(t, dir, name, content)
		if _, err := data.ReadDAGFile(path); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := data.ReadDAGFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file: expected error")
	}
}

func TestReadDataAndSkyline(t *testing.T) {
	dir := t.TempDir()
	dagPath := writeFile(t, dir, "dag.txt", "4\n0 1\n0 2\n1 3\n2 3\n")
	dag, err := data.ReadDAGFile(dagPath)
	if err != nil {
		t.Fatal(err)
	}
	dom, err := poset.NewDomain(dag)
	if err != nil {
		t.Fatal(err)
	}
	// The flights example: airlines a..d = 0..3.
	csv := "to_0,to_1,po_0\n" +
		"1800,0,0\n2000,0,0\n1800,0,1\n1200,1,1\n1400,1,0\n" +
		"1000,1,1\n1000,1,3\n1800,1,2\n500,2,3\n1200,2,2\n"
	dataPath := writeFile(t, dir, "data.csv", csv)
	ds, err := data.ReadCSVDataset(dataPath, []*poset.Domain{dom})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Pts) != 10 || ds.NumTO() != 2 || ds.NumPO() != 1 {
		t.Fatalf("shape: n=%d to=%d po=%d", len(ds.Pts), ds.NumTO(), ds.NumPO())
	}
	got := map[int32]bool{}
	for _, id := range ds.NaiveSkyline() {
		got[id] = true
	}
	// Table I first order: rows 0,4,5,8,9.
	for _, id := range []int32{0, 4, 5, 8, 9} {
		if !got[id] {
			t.Errorf("row %d missing from skyline", id)
		}
	}
	if len(got) != 5 {
		t.Errorf("skyline size %d, want 5", len(got))
	}
}

// TestRunStaticAllRegistered: -method works for every registered name
// with no per-algorithm switch — the registry is the single dispatch
// point — and -parallel N returns the same skyline set.
func TestRunStaticAllRegistered(t *testing.T) {
	ds, err := data.ReadCSVDataset(writeFile(t, t.TempDir(), "data.csv",
		"to_0,to_1\n3,1\n1,3\n2,2\n4,4\n2,2\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32]bool{}
	for _, id := range ds.NaiveSkyline() {
		want[id] = true
	}
	for _, name := range core.AlgorithmNames() {
		for _, parallel := range []int{0, 3} {
			res, err := runStatic(ds, name, parallel)
			if err != nil {
				t.Errorf("%s parallel=%d: %v", name, parallel, err)
				continue
			}
			got := map[int32]bool{}
			for _, id := range res.SkylineIDs {
				got[id] = true
			}
			if len(got) != len(want) {
				t.Errorf("%s parallel=%d: skyline %v", name, parallel, res.SkylineIDs)
			}
			for id := range want {
				if !got[id] {
					t.Errorf("%s parallel=%d: missing row %d", name, parallel, id)
				}
			}
		}
	}
	if _, err := runStatic(ds, "nope", 0); err == nil {
		t.Error("unknown method must error")
	}
}

func TestReadDataErrors(t *testing.T) {
	dir := t.TempDir()
	dom, _ := poset.NewDomain(poset.NewDAG(2))
	cases := map[string]string{
		"badcol.csv":  "foo\n1\n",
		"badnum.csv":  "to_0\nxyz\n",
		"badnum2.csv": "to_0,po_0\n1,zz\n",
	}
	for name, content := range cases {
		path := writeFile(t, dir, name, content)
		domains := []*poset.Domain{dom}
		if name == "badnum.csv" {
			domains = nil
		}
		if _, err := data.ReadCSVDataset(path, domains); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Mismatched DAG count.
	path := writeFile(t, dir, "mismatch.csv", "to_0,po_0\n1,0\n")
	if _, err := data.ReadCSVDataset(path, nil); err == nil {
		t.Error("po column without DAG: expected error")
	}
}

// TestStoreSaveLoadRoundTrip: tables:save into a store directory, load
// back, and the dataset — domains included — answers identically.
func TestStoreSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dagPath := writeFile(t, dir, "dag.txt", "4\n0 1\n0 2\n1 3\n2 3\n")
	csv := "to_0,to_1,po_0\n" +
		"1800,0,0\n2000,0,0\n1800,0,1\n1200,1,1\n1400,1,0\n" +
		"1000,1,1\n1000,1,3\n1800,1,2\n500,2,3\n1200,2,2\n"
	dataPath := writeFile(t, dir, "data.csv", csv)
	domains, err := data.ReadDomains([]string{dagPath})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.ReadCSVDataset(dataPath, domains)
	if err != nil {
		t.Fatal(err)
	}

	storeDir := filepath.Join(dir, "store")
	st, err := store.OpenDisk(storeDir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := data.DatasetSnapshot(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot("w", snap); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := store.OpenDisk(storeDir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snap2, err := st2.Load("w")
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := data.DatasetFromSnapshot(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Pts) != len(ds.Pts) {
		t.Fatalf("rows %d, want %d", len(ds2.Pts), len(ds.Pts))
	}
	want := fmt.Sprint(ds.NaiveSkyline())
	if got := fmt.Sprint(ds2.NaiveSkyline()); got != want {
		t.Fatalf("skyline after round trip %s, want %s", got, want)
	}
	// Static and dynamic query paths agree too.
	resA, err := runStatic(ds, "stss", 0)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := runStatic(ds2, "stss", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(resA.SkylineIDs) != fmt.Sprint(resB.SkylineIDs) {
		t.Fatalf("stss after round trip %v, want %v", resB.SkylineIDs, resA.SkylineIDs)
	}
	resC, err := runDynamic(ds2, dagPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sortIDs(resC.SkylineIDs)) != fmt.Sprint(sortIDs(resA.SkylineIDs)) {
		t.Fatalf("dTSS after round trip %v, want %v", resC.SkylineIDs, resA.SkylineIDs)
	}
}

func sortIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
