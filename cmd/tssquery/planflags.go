package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/plan"
	"repro/internal/serve"
)

// Planner-mode flag parsing, shared by the local and thin-client paths.
//
// Grammar (comma-separated clauses in -where, comma-separated column
// names in -subspace):
//
//	-subspace to_0,po_0
//	-where "to_0<=500,to_1>=2,po_0 in 1|3"
//	-topk 10 -rank domcount|ideal|dpidp|layer -explain
//	-fweights 0.5,0.2
//
// Locally the columns of a CSV workload are positional: to_<i> /
// po_<i> (the header's own to_*/po_* names in column order), and PO
// values are the integer ids the CSV stores. Against a server, column
// names and PO value labels are passed through verbatim and resolved by
// the table's schema.

type planFlags struct {
	subspace string
	where    string
	topk     int
	rank     string
	fweights string
	explain  bool
}

// active reports whether any planner-mode flag was used.
func (pf *planFlags) active() bool {
	return pf.subspace != "" || pf.where != "" || pf.topk > 0 || pf.rank != "" ||
		pf.fweights != "" || pf.explain
}

// checkCombos rejects flag combinations the planner would refuse
// anyway, naming the flags instead of wire fields.
func (pf *planFlags) checkCombos() error {
	if pf.fweights != "" && pf.rank != "" {
		return fmt.Errorf("-fweights cannot combine with -rank %s (the restricted skyline is unranked; unranked -topk keeps a prefix)", pf.rank)
	}
	return nil
}

// parseFWeightsCSV parses the -fweights flag's comma-separated
// per-TO-column weight lower bounds.
func parseFWeightsCSV(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -fweights value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseIdealCSV parses the -ideal flag's comma-separated values.
func parseIdealCSV(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -ideal value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// errIdealNeedsRank is the shared refusal when -ideal is used outside
// the two modes that consume it.
var errIdealNeedsRank = fmt.Errorf("-ideal needs -rank ideal (or -querydags for a fully dynamic query)")

// whereClause is one parsed -where clause, still in string form.
type whereClause struct {
	col string
	op  string // "<=", ">=", "in"
	val string // number for <=/>=; |-separated list for in
}

func parseWhere(s string) ([]whereClause, error) {
	var out []whereClause
	for _, raw := range strings.Split(s, ",") {
		clause := strings.TrimSpace(raw)
		if clause == "" {
			continue
		}
		if i := strings.Index(clause, "<="); i >= 0 {
			out = append(out, whereClause{col: strings.TrimSpace(clause[:i]), op: "<=", val: strings.TrimSpace(clause[i+2:])})
			continue
		}
		if i := strings.Index(clause, ">="); i >= 0 {
			out = append(out, whereClause{col: strings.TrimSpace(clause[:i]), op: ">=", val: strings.TrimSpace(clause[i+2:])})
			continue
		}
		if col, rest, ok := strings.Cut(clause, " in "); ok {
			out = append(out, whereClause{col: strings.TrimSpace(col), op: "in", val: strings.TrimSpace(rest)})
			continue
		}
		return nil, fmt.Errorf("bad -where clause %q (want col<=N, col>=N or col in v|w)", clause)
	}
	return out, nil
}

// parseCol resolves a positional column token: to_<i>/to<i> or
// po_<i>/po<i>.
func parseCol(tok string, nTO, nPO int) (dim int, isTO bool, err error) {
	var idx string
	switch {
	case strings.HasPrefix(tok, "to_"):
		idx, isTO = tok[3:], true
	case strings.HasPrefix(tok, "to"):
		idx, isTO = tok[2:], true
	case strings.HasPrefix(tok, "po_"):
		idx = tok[3:]
	case strings.HasPrefix(tok, "po"):
		idx = tok[2:]
	default:
		return 0, false, fmt.Errorf("bad column %q (want to_<i> or po_<i>)", tok)
	}
	dim, err = strconv.Atoi(idx)
	if err != nil {
		return 0, false, fmt.Errorf("bad column %q: %v", tok, err)
	}
	limit := nPO
	if isTO {
		limit = nTO
	}
	if dim < 0 || dim >= limit {
		return 0, false, fmt.Errorf("column %q out of range (workload has %d TO / %d PO columns)", tok, nTO, nPO)
	}
	return dim, isTO, nil
}

// localQuery builds the plan.Query of the local path against a
// workload's shape.
func (pf *planFlags) localQuery(nTO, nPO int, method string, parallel int, ideal []int64) (plan.Query, error) {
	if err := pf.checkCombos(); err != nil {
		return plan.Query{}, err
	}
	q := plan.Query{
		TopK:  pf.topk,
		Rank:  plan.Rank(pf.rank),
		Ideal: ideal,
		Hints: plan.Hints{Algorithm: method, Parallelism: parallel},
	}
	if pf.fweights != "" {
		fw, err := parseFWeightsCSV(pf.fweights)
		if err != nil {
			return plan.Query{}, err
		}
		q.FWeights = fw
	}
	if pf.subspace != "" {
		s := &plan.Subspace{}
		for _, tok := range strings.Split(pf.subspace, ",") {
			dim, isTO, err := parseCol(strings.TrimSpace(tok), nTO, nPO)
			if err != nil {
				return plan.Query{}, fmt.Errorf("-subspace: %w", err)
			}
			if isTO {
				s.TO = append(s.TO, dim)
			} else {
				s.PO = append(s.PO, dim)
			}
		}
		s.TO = plan.NormalizeDims(s.TO)
		s.PO = plan.NormalizeDims(s.PO)
		q.Subspace = s
	}
	clauses, err := parseWhere(pf.where)
	if err != nil {
		return plan.Query{}, err
	}
	for _, c := range clauses {
		dim, isTO, err := parseCol(c.col, nTO, nPO)
		if err != nil {
			return plan.Query{}, fmt.Errorf("-where: %w", err)
		}
		if c.op == "in" {
			if isTO {
				return plan.Query{}, fmt.Errorf("-where: `in` needs a po_* column, got %q", c.col)
			}
			pr := plan.Predicate{Kind: plan.POIn, Dim: dim}
			for _, v := range strings.Split(c.val, "|") {
				id, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil {
					return plan.Query{}, fmt.Errorf("-where: bad PO value id %q: %v", v, err)
				}
				pr.In = append(pr.In, int32(id))
			}
			q.Where = append(q.Where, pr)
			continue
		}
		if !isTO {
			return plan.Query{}, fmt.Errorf("-where: %s needs a to_* column, got %q", c.op, c.col)
		}
		n, err := strconv.ParseInt(c.val, 10, 64)
		if err != nil {
			return plan.Query{}, fmt.Errorf("-where: bad bound %q: %v", c.val, err)
		}
		pr := plan.Predicate{Kind: plan.TORange, Dim: dim}
		if c.op == "<=" {
			pr.HasHi, pr.Hi = true, n
		} else {
			pr.HasLo, pr.Lo = true, n
		}
		q.Where = append(q.Where, pr)
	}
	return q, nil
}

// wireFields renders the flags as QueryRequest fields for the thin
// client: names and labels pass through verbatim.
func (pf *planFlags) wireFields(req *serve.QueryRequest) error {
	if err := pf.checkCombos(); err != nil {
		return err
	}
	if pf.fweights != "" {
		fw, err := parseFWeightsCSV(pf.fweights)
		if err != nil {
			return err
		}
		req.FWeights = fw
	}
	if pf.subspace != "" {
		for _, tok := range strings.Split(pf.subspace, ",") {
			req.Subspace = append(req.Subspace, strings.TrimSpace(tok))
		}
	}
	clauses, err := parseWhere(pf.where)
	if err != nil {
		return err
	}
	for _, c := range clauses {
		w := serve.WhereSpec{Col: c.col}
		switch c.op {
		case "in":
			for _, v := range strings.Split(c.val, "|") {
				w.In = append(w.In, strings.TrimSpace(v))
			}
		default:
			n, err := strconv.ParseInt(c.val, 10, 64)
			if err != nil {
				return fmt.Errorf("-where: bad bound %q: %v", c.val, err)
			}
			if c.op == "<=" {
				w.Le = &n
			} else {
				w.Ge = &n
			}
		}
		req.Where = append(req.Where, w)
	}
	req.TopK = pf.topk
	req.Rank = pf.rank
	req.Explain = pf.explain
	return nil
}
