package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/serve"
)

// Thin-client mode (-serve URL): instead of computing locally, talk to
// a running tssserve. With -data, the local workload is first uploaded
// as a table (replacing any table of the same name); then the query —
// static (-method/-parallel) or dynamic (-querydags/-ideal) — is issued
// over HTTP and the response printed in the local mode's format.

type clientConfig struct {
	baseURL, table    string
	dataPath, dagList string
	method            string
	methodSet         bool
	parallel          int
	queryDAGs, ideal  string
	limit             int
	stream            bool // ?stream=1: print rows as the server certifies them
	first             int  // stop after K streamed rows (plan mode: server-side top-k)
	plan              planFlags
}

func runClient(cfg clientConfig) error {
	if cfg.table == "" {
		cfg.table = "default"
	}
	// Match local mode: dTSS runs sequentially, so -parallel would be
	// silently dropped by the server on a dynamic query.
	if cfg.queryDAGs != "" && cfg.parallel != 0 {
		return fmt.Errorf("-parallel applies to static queries only (dTSS runs sequentially)")
	}
	base := strings.TrimRight(cfg.baseURL, "/")
	c := &client{base: base, http: http.DefaultClient}

	if cfg.dataPath != "" {
		if err := c.upload(cfg); err != nil {
			return err
		}
	}
	if cfg.queryDAGs != "" {
		return c.dynamicQuery(cfg)
	}
	if cfg.plan.active() {
		return c.planQuery(cfg)
	}
	return c.staticQuery(cfg)
}

type client struct {
	base string
	http *http.Client
}

// upload replaces the server table with the local CSV workload.
func (c *client) upload(cfg clientConfig) error {
	var dagPaths []string
	if cfg.dagList != "" {
		dagPaths = strings.Split(cfg.dagList, ",")
	}
	domains, err := data.ReadDomains(dagPaths)
	if err != nil {
		return err
	}
	ds, err := data.ReadCSVDataset(cfg.dataPath, domains)
	if err != nil {
		return fmt.Errorf("read %s: %w", cfg.dataPath, err)
	}
	if err := ds.Validate(); err != nil {
		return err
	}
	spec := serve.SpecFromDataset(cfg.table, ds)

	// Replace: drop any previous table of this name, then create.
	req, err := http.NewRequest(http.MethodDelete, c.base+"/tables/"+url.PathEscape(cfg.table), nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("reach server: %w", err)
	}
	resp.Body.Close()
	// 404 just means no previous table; anything else non-2xx would
	// make the create below fail confusingly, so report it here.
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("drop previous table: HTTP %d", resp.StatusCode)
	}
	var info serve.TableInfo
	if err := c.postJSON("/tables", spec, &info); err != nil {
		return fmt.Errorf("create table: %w", err)
	}
	fmt.Printf("uploaded table %q: %d rows, %d groups\n", info.Name, info.Rows, info.Groups)
	return nil
}

// staticQuery issues GET /tables/{t}/skyline.
func (c *client) staticQuery(cfg clientConfig) error {
	q := url.Values{}
	q.Set("algo", cfg.method)
	if cfg.parallel != 0 {
		q.Set("parallel", strconv.Itoa(cfg.parallel))
	}
	if cfg.limit > 0 {
		q.Set("limit", strconv.Itoa(cfg.limit))
	}
	path := "/tables/" + url.PathEscape(cfg.table) + "/skyline?"
	if cfg.stream {
		q.Set("stream", "1")
		return c.runStream(http.MethodGet, path+q.Encode(), nil, cfg.first)
	}
	var out serve.QueryResponse
	if err := c.getJSON(path+q.Encode(), &out); err != nil {
		return err
	}
	printResponse(&out, cfg.limit)
	return nil
}

// dynamicQuery issues POST /tables/{t}/query with the DAG files' edges.
func (c *client) dynamicQuery(cfg clientConfig) error {
	var req serve.QueryRequest
	for _, path := range strings.Split(cfg.queryDAGs, ",") {
		dag, err := data.ReadDAGFile(path)
		if err != nil {
			return fmt.Errorf("read %s: %w", path, err)
		}
		var qo serve.QueryOrder
		for v := 0; v < dag.N(); v++ {
			for _, u := range dag.Out(v) {
				qo.Edges = append(qo.Edges, [2]string{strconv.Itoa(v), strconv.Itoa(int(u))})
			}
		}
		req.Orders = append(req.Orders, qo)
	}
	if cfg.ideal != "" {
		var err error
		ideal, err := parseIdealCSV(cfg.ideal)
		if err != nil {
			return err
		}
		req.Ideal = ideal
	}
	if cfg.limit > 0 {
		req.Limit = cfg.limit
	}
	if cfg.stream {
		return c.runStream(http.MethodPost, "/tables/"+url.PathEscape(cfg.table)+"/query?stream=1", req, cfg.first)
	}
	var out serve.QueryResponse
	if err := c.postJSON("/tables/"+url.PathEscape(cfg.table)+"/query", req, &out); err != nil {
		return err
	}
	printResponse(&out, cfg.limit)
	return nil
}

// planQuery issues POST /tables/{t}/query in planner mode: the
// subspace/where/topk/rank fields pass through verbatim (the server
// resolves column names and PO value labels against the table schema),
// -method (when explicitly set) and -parallel become optimizer hints.
func (c *client) planQuery(cfg clientConfig) error {
	var req serve.QueryRequest
	if err := cfg.plan.wireFields(&req); err != nil {
		return err
	}
	if cfg.methodSet {
		req.Algo = cfg.method
	}
	req.Parallel = cfg.parallel
	if cfg.ideal != "" {
		if req.Rank != "ideal" {
			return errIdealNeedsRank
		}
		ideal, err := parseIdealCSV(cfg.ideal)
		if err != nil {
			return err
		}
		req.Ideal = ideal
	}
	if cfg.limit > 0 {
		req.Limit = cfg.limit
	}
	if cfg.stream {
		// -first becomes a server-side unranked top-k: the query itself
		// stops (and a coordinator cancels its remaining shard legs) after
		// K certified rows, instead of the client discarding over-fetch.
		if cfg.first > 0 && req.TopK == 0 {
			req.TopK = cfg.first
		}
		return c.runStream(http.MethodPost, "/tables/"+url.PathEscape(cfg.table)+"/query?stream=1", req, cfg.first)
	}
	var out serve.QueryResponse
	if err := c.postJSON("/tables/"+url.PathEscape(cfg.table)+"/query", req, &out); err != nil {
		return err
	}
	if out.Plan != nil {
		buf, err := json.MarshalIndent(out.Plan, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("plan: %s\n", buf)
	}
	printResponse(&out, cfg.limit)
	return nil
}

// printResponse mirrors the local mode's report format. Coordinator
// responses additionally report the scatter fan-out and annotate each
// row with its shard — the (shard, row) pair is the handle a
// removeSharded batch needs.
func printResponse(out *serve.QueryResponse, limit int) {
	fmt.Printf("rows=%d skyline=%d version=%d", out.Rows, out.Count, out.Version)
	if out.CacheHit {
		fmt.Printf(" (cache hit)")
	}
	if c := out.Cluster; c != nil {
		fmt.Printf(" [cluster: %d shards, versions=%v", c.Shards, c.Versions)
		if len(c.Pruned) > 0 {
			fmt.Printf(", pruned=%v", c.Pruned)
		}
		fmt.Printf("]")
	}
	fmt.Println()
	m := &out.Metrics
	fmt.Printf("reads=%d writes=%d checks=%d cpu=%.6fs total=%.3fs (5ms/IO)\n",
		m.ReadIOs, m.WriteIOs, m.DomChecks, m.CPUSeconds, m.TotalSeconds)
	n := len(out.Skyline)
	if limit > 0 && limit < n {
		n = limit
	}
	for _, row := range out.Skyline[:n] {
		if row.Shard != nil {
			fmt.Printf("  shard %d row %d: TO=%v PO=%v\n", *row.Shard, row.Row, row.TO, row.PO)
			continue
		}
		fmt.Printf("  row %d: TO=%v PO=%v\n", row.Row, row.TO, row.PO)
	}
	if n < out.Count {
		fmt.Printf("  ... %d more\n", out.Count-n)
	}
}

// runStream issues a ?stream=1 request and prints each NDJSON record as
// it arrives: rows the moment the server certifies them, then the
// trailer summary. With first > 0 the client stops reading — and closes
// the connection, cancelling the server-side query — once K rows have
// been printed.
func (c *client) runStream(method, path string, body any, first int) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("reach server: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeResponse(resp, nil)
	}
	dec := json.NewDecoder(resp.Body)
	printed := 0
	for {
		var rec serve.StreamRecord
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		switch rec.Type {
		case "header":
			fmt.Printf("streaming %q", rec.Table)
			if rec.Rows > 0 || rec.Version > 0 {
				fmt.Printf(": rows=%d version=%d", rec.Rows, rec.Version)
			}
			fmt.Println()
		case "row":
			if rec.Row == nil {
				continue
			}
			if rec.Row.Shard != nil {
				fmt.Printf("  [%d] +%.1fms shard %d row %d: TO=%v PO=%v\n",
					rec.Emission, rec.Elapsed*1e3, *rec.Row.Shard, rec.Row.Row, rec.Row.TO, rec.Row.PO)
			} else {
				fmt.Printf("  [%d] +%.1fms row %d: TO=%v PO=%v\n",
					rec.Emission, rec.Elapsed*1e3, rec.Row.Row, rec.Row.TO, rec.Row.PO)
			}
			printed++
			if first > 0 && printed >= first {
				fmt.Printf("first %d rows received; closing stream\n", first)
				return nil
			}
		case "heartbeat":
			// idle keepalive — nothing to print
		case "error":
			return fmt.Errorf("server: %s", rec.Error)
		case "trailer":
			fmt.Printf("skyline=%d version=%d", rec.Count, rec.Version)
			if rec.CacheHit {
				fmt.Printf(" (cache hit)")
			}
			if cl := rec.Cluster; cl != nil {
				fmt.Printf(" [cluster: %d shards, versions=%v", cl.Shards, cl.Versions)
				if len(cl.Pruned) > 0 {
					fmt.Printf(", pruned=%v", cl.Pruned)
				}
				fmt.Printf("]")
			}
			fmt.Println()
			if m := rec.Metrics; m != nil {
				fmt.Printf("reads=%d writes=%d checks=%d cpu=%.6fs total=%.3fs (5ms/IO)\n",
					m.ReadIOs, m.WriteIOs, m.DomChecks, m.CPUSeconds, m.TotalSeconds)
			}
			if rec.Plan != nil {
				buf, err := json.MarshalIndent(rec.Plan, "", "  ")
				if err != nil {
					return err
				}
				fmt.Printf("plan: %s\n", buf)
			}
			if printed < rec.Count {
				fmt.Printf("  ... %d more certified\n", rec.Count-printed)
			}
			return nil
		}
	}
}

func (c *client) getJSON(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("reach server: %w", err)
	}
	return decodeResponse(resp, out)
}

func (c *client) postJSON(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("reach server: %w", err)
	}
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
