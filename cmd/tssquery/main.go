// Command tssquery computes the skyline of a CSV workload (as produced
// by tssgen, or hand-written in the same format) with a selectable
// algorithm, reporting the simulated cost model's counters.
//
//	tssquery -data work/data.csv -dags work/dag_0.txt,work/dag_1.txt -method stss
//	tssquery -data work/data.csv -dags work/dag_0.txt -method sdc+ -limit 20
//	tssquery -data work/data.csv -dags work/dag_0.txt -method stss -parallel 4
//
// The -method flag accepts any algorithm in the registry (see -help for
// the current list); -parallel N runs it behind the partition-and-merge
// executor with N shards (-1 = one per CPU).
//
// Planner mode (-subspace / -where / -topk / -rank / -fweights /
// -explain) answers subspace, constrained, top-k and weight-restricted
// skyline variants through the cost-based optimizer, which picks the
// algorithm (unless -method is explicitly set), parallelism and
// predicate placement from workload statistics; -explain prints the
// chosen plan as JSON:
//
//	tssquery -data work/data.csv -dags work/dag_0.txt -where "to_0<=500,po_0 in 1|3" -explain
//	tssquery -data work/data.csv -dags work/dag_0.txt -subspace to_0,po_0
//	tssquery -data work/data.csv -dags work/dag_0.txt -topk 10 -rank dpidp
//	tssquery -data work/data.csv -dags work/dag_0.txt -fweights 0.5,0.2
//
// The same flags work against a server (-serve URL), with column names
// and PO value labels resolved by the table's schema.
//
// Workloads round-trip through the durable storage engine (the same
// format tssserve's -data-dir uses):
//
//	tssquery -data work/data.csv -dags work/dag_0.txt -store ./tss-data -table w -save
//	tssquery -store ./tss-data -table w -method stss
//
// tables:save persists the CSV workload as a columnar snapshot;
// loading queries the stored table (snapshot + WAL replay) without the
// original CSV.
//
// The CSV header names the columns: to_* columns are totally ordered
// (smaller is better), po_* columns hold integer value ids into the
// corresponding DAG file (first line N, then "better worse" edges).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/plan"
	"repro/internal/poset"
	"repro/internal/store"
)

func main() {
	dataPath := flag.String("data", "", "CSV data file")
	dagList := flag.String("dags", "", "comma-separated DAG files, one per PO column")
	method := flag.String("method", "stss",
		"skyline algorithm: "+strings.Join(core.AlgorithmNames(), ", "))
	parallel := flag.Int("parallel", 0,
		"run the partition-and-merge executor with N shards (0 = sequential, -1 = one per CPU)")
	queryDAGs := flag.String("querydags", "", "dynamic query: comma-separated DAG files replacing the data's partial orders (dTSS)")
	ideal := flag.String("ideal", "", "fully dynamic query: comma-separated ideal TO values (requires -querydags)")
	limit := flag.Int("limit", 10, "skyline rows to print (0 = all)")
	serveURL := flag.String("serve", "", "tssserve base URL: act as a thin client against a running server instead of computing locally")
	tableName := flag.String("table", "", "server or store table name (defaults to \"default\")")
	storeDir := flag.String("store", "", "durable store directory: with -save persist the -data workload there, without -data load the table from it")
	save := flag.Bool("save", false, "tables:save — persist the -data workload into -store and exit")
	stream := flag.Bool("stream", false, "progressive delivery: print each row the moment it is certified (server mode: NDJSON over ?stream=1)")
	first := flag.Int("first", 0, "stop after the first K streamed rows (implies -stream; unranked queries terminate server-side)")
	var pf planFlags
	flag.StringVar(&pf.subspace, "subspace", "", "planned query: comma-separated kept columns (to_<i>/po_<i> locally, schema names against a server)")
	flag.StringVar(&pf.where, "where", "", "planned query: comma-separated predicates, e.g. \"to_0<=500,po_0 in 1|3\"")
	flag.IntVar(&pf.topk, "topk", 0, "planned query: keep only the best K skyline rows")
	flag.StringVar(&pf.rank, "rank", "",
		"top-k ranking: "+strings.Join(plan.RankerNames(), ", ")+" (default: first K in emission order)")
	flag.StringVar(&pf.fweights, "fweights", "",
		"restricted skyline: comma-separated per-TO-column weight lower bounds (F-dominance; sum over kept columns <= 1)")
	flag.BoolVar(&pf.explain, "explain", false, "print the optimizer's plan (algorithm, route, estimates) before the results")
	flag.Parse()
	methodSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "method" {
			methodSet = true
		}
	})
	if pf.active() && *queryDAGs != "" {
		fatalf("-subspace/-where/-topk/-rank/-fweights/-explain plan over the workload's own orders; they cannot combine with -querydags")
	}
	if *first > 0 {
		*stream = true
	}
	if *stream && *queryDAGs != "" && *serveURL == "" {
		fatalf("-stream with -querydags needs -serve (dTSS answers group-at-a-time; the server replays its rows as a stream)")
	}

	if *serveURL != "" {
		if err := runClient(clientConfig{
			baseURL: *serveURL, table: *tableName,
			dataPath: *dataPath, dagList: *dagList,
			method: *method, methodSet: methodSet, parallel: *parallel,
			queryDAGs: *queryDAGs, ideal: *ideal, limit: *limit,
			stream: *stream, first: *first,
			plan: pf,
		}); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *dataPath == "" && *storeDir == "" {
		fatalf("missing -data (or -store to load a persisted table)")
	}

	var ds *core.Dataset
	if *dataPath != "" {
		domains, err := loadDomains(*dagList)
		if err != nil {
			fatalf("%v", err)
		}
		ds, err = data.ReadCSVDataset(*dataPath, domains)
		if err != nil {
			fatalf("read %s: %v", *dataPath, err)
		}
		if err := ds.Validate(); err != nil {
			fatalf("validate: %v", err)
		}
	}

	if *storeDir != "" {
		table := *tableName
		if table == "" {
			table = "default"
		}
		st, err := store.OpenDisk(*storeDir, store.DiskOptions{})
		if err != nil {
			fatalf("open store %q: %v", *storeDir, err)
		}
		defer st.Close()
		if *save {
			if ds == nil {
				fatalf("-save needs -data")
			}
			snap, err := data.DatasetSnapshot(ds, 0)
			if err != nil {
				fatalf("%v", err)
			}
			if err := st.SaveSnapshot(table, snap); err != nil {
				fatalf("save table %q: %v", table, err)
			}
			fmt.Printf("saved table %q: %d rows, %d TO / %d PO columns\n",
				table, snap.Rows.N(), len(snap.Schema.TOColumns), len(snap.Schema.Orders))
			return
		}
		if ds == nil {
			snap, err := st.Load(table)
			if err != nil {
				fatalf("load table %q: %v", table, err)
			}
			ds, err = data.DatasetFromSnapshot(snap)
			if err != nil {
				fatalf("table %q: %v", table, err)
			}
			fmt.Printf("loaded table %q: version %d, %d rows\n", table, snap.Version, len(ds.Pts))
		}
	}

	if *stream {
		forced := ""
		if methodSet {
			forced = *method
		}
		if err := runLocalStream(ds, pf, forced, *parallel, *ideal, *first, *limit); err != nil {
			fatalf("%v", err)
		}
		return
	}

	var res *core.Result
	var err error
	switch {
	case *queryDAGs != "":
		if *parallel != 0 {
			fatalf("-parallel applies to static queries only (dTSS runs sequentially)")
		}
		res, err = runDynamic(ds, *queryDAGs, *ideal)
		if err != nil {
			fatalf("%v", err)
		}
	case pf.active():
		forced := ""
		if methodSet {
			forced = *method
		}
		res, err = runPlanned(ds, pf, forced, *parallel, *ideal)
		if err != nil {
			fatalf("%v", err)
		}
	default:
		res, err = runStatic(ds, *method, *parallel)
		if err != nil {
			fatalf("%v", err)
		}
	}

	m := &res.Metrics
	fmt.Printf("rows=%d skyline=%d\n", len(ds.Pts), len(res.SkylineIDs))
	fmt.Printf("reads=%d writes=%d checks=%d cpu=%v total=%v (5ms/IO)\n",
		m.ReadIOs, m.WriteIOs, m.DomChecks, m.CPU.Round(1000),
		m.TotalTime(core.DefaultIOCost).Round(1000))
	n := *limit
	if n == 0 || n > len(res.SkylineIDs) {
		n = len(res.SkylineIDs)
	}
	for _, id := range res.SkylineIDs[:n] {
		p := &ds.Pts[id]
		fmt.Printf("  row %d: TO=%v PO=%v\n", id, p.TO, p.PO)
	}
	if n < len(res.SkylineIDs) {
		fmt.Printf("  ... %d more\n", len(res.SkylineIDs)-n)
	}
}

// loadDomains reads and preprocesses one DAG file per PO column.
func loadDomains(dagList string) ([]*poset.Domain, error) {
	if dagList == "" {
		return nil, nil
	}
	return data.ReadDomains(strings.Split(dagList, ","))
}

// runStatic answers a static skyline query with the chosen registered
// algorithm, optionally behind the partition-and-merge executor.
func runStatic(ds *core.Dataset, method string, parallel int) (*core.Result, error) {
	algo, ok := core.Lookup(method)
	if !ok {
		return nil, fmt.Errorf("unknown method %q (have: %s)",
			method, strings.Join(core.AlgorithmNames(), ", "))
	}
	opt := core.Options{UseMemTree: true}
	if parallel != 0 {
		if parallel > 0 {
			opt.Parallelism = parallel
		}
		algo = core.Parallel(algo)
	}
	return algo.Run(ds, opt)
}

// runPlanned answers a subspace / constrained / top-k query through the
// cost-based planner. With -method explicitly set the algorithm is
// forced; otherwise the optimizer chooses from the workload's
// statistics. -parallel maps to a shard-count hint (-1 = one per CPU,
// 0 = planner decides in this mode).
func runPlanned(ds *core.Dataset, pf planFlags, forcedMethod string, parallel int, idealCSV string) (*core.Result, error) {
	hint := 0
	switch {
	case parallel > 0:
		hint = parallel
	case parallel < 0:
		hint = runtime.GOMAXPROCS(0)
	}
	var ideal []int64
	if idealCSV != "" {
		if pf.rank != string(plan.RankIdeal) {
			return nil, errIdealNeedsRank
		}
		var err error
		if ideal, err = parseIdealCSV(idealCSV); err != nil {
			return nil, err
		}
	}
	q, err := pf.localQuery(ds.NumTO(), ds.NumPO(), forcedMethod, hint, ideal)
	if err != nil {
		return nil, err
	}
	env := plan.Env{Learned: plan.NewLearned()}
	p, err := plan.New(ds, q, env)
	if err != nil {
		return nil, err
	}
	res, err := p.Run(context.Background(), ds, env)
	if err != nil {
		return nil, err
	}
	if pf.explain {
		buf, err := json.MarshalIndent(&p.Explain, "", "  ")
		if err != nil {
			return nil, err
		}
		fmt.Printf("plan: %s\n", buf)
	}
	return res, nil
}

// runLocalStream answers a static or planned query through the
// streaming executor, printing each row the moment it is certified
// (with its elapsed-to-certify). -first K becomes an unranked top-k —
// the traversal stops after K certified rows — unless -topk is already
// set, and -limit only truncates what is printed.
func runLocalStream(ds *core.Dataset, pf planFlags, forcedMethod string, parallel int, idealCSV string, first, limit int) error {
	hint := 0
	switch {
	case parallel > 0:
		hint = parallel
	case parallel < 0:
		hint = runtime.GOMAXPROCS(0)
	}
	var q plan.Query
	if pf.active() {
		var ideal []int64
		if idealCSV != "" {
			if pf.rank != string(plan.RankIdeal) {
				return errIdealNeedsRank
			}
			var err error
			if ideal, err = parseIdealCSV(idealCSV); err != nil {
				return err
			}
		}
		var err error
		if q, err = pf.localQuery(ds.NumTO(), ds.NumPO(), forcedMethod, hint, ideal); err != nil {
			return err
		}
	} else {
		q = plan.Query{Hints: plan.Hints{Algorithm: forcedMethod, Parallelism: hint, NoCache: true}}
	}
	if first > 0 && q.TopK == 0 {
		q.TopK = first
	}
	env := plan.Env{Learned: plan.NewLearned()}
	p, err := plan.New(ds, q, env)
	if err != nil {
		return err
	}
	res, err := p.RunStream(context.Background(), ds, env, func(row plan.StreamRow) error {
		if limit > 0 && row.Index >= limit {
			return nil
		}
		pt := &ds.Pts[row.ID]
		fmt.Printf("  [%d] +%v row %d: TO=%v PO=%v\n",
			row.Index, row.Elapsed.Round(time.Microsecond), row.ID, pt.TO, pt.PO)
		return nil
	})
	if err != nil {
		return err
	}
	m := &res.Metrics
	fmt.Printf("rows=%d skyline=%d\n", len(ds.Pts), len(res.SkylineIDs))
	fmt.Printf("reads=%d writes=%d checks=%d cpu=%v total=%v (5ms/IO)\n",
		m.ReadIOs, m.WriteIOs, m.DomChecks, m.CPU.Round(1000),
		m.TotalTime(core.DefaultIOCost).Round(1000))
	if pf.explain {
		buf, err := json.MarshalIndent(&p.Explain, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("plan: %s\n", buf)
	}
	return nil
}

// runDynamic answers a dynamic (or fully dynamic, when idealCSV is set)
// skyline query with dTSS over freshly built group structures.
func runDynamic(ds *core.Dataset, queryDAGs, idealCSV string) (*core.Result, error) {
	qDomains, err := loadDomains(queryDAGs)
	if err != nil {
		return nil, err
	}
	db := core.NewDynamicDB(ds, core.Options{})
	if idealCSV == "" {
		return db.QueryTSS(qDomains, core.Options{UseMemTree: true})
	}
	var q []int32
	for _, part := range strings.Split(idealCSV, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -ideal value %q: %w", part, err)
		}
		q = append(q, int32(v))
	}
	return db.QueryTSSFull(q, qDomains, core.Options{UseMemTree: true})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
