// Command tssgen generates a synthetic skyline workload in the paper's
// setup (§VI-A): Independent or Anti-correlated totally ordered
// attributes plus lattice-DAG partially ordered attributes. It writes a
// CSV data file and one DAG edge-list file per PO attribute, which
// tssquery consumes.
//
//	tssgen -n 100000 -to 2 -po 2 -height 8 -density 0.8 -dist anti -out ./work
//
// Output files: <out>/data.csv (columns to_0..to_k, po_0..po_m, PO
// values as integer ids) and <out>/dag_<d>.txt ("N" on the first line,
// then one "better worse" edge per line).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/data"
	"repro/internal/poset"
)

func main() {
	n := flag.Int("n", 100_000, "number of rows")
	nTO := flag.Int("to", 2, "totally ordered attributes")
	nPO := flag.Int("po", 2, "partially ordered attributes")
	h := flag.Int("height", 8, "lattice DAG height")
	d := flag.Float64("density", 0.8, "lattice DAG density")
	dist := flag.String("dist", "indep", "distribution: indep, anti or corr")
	seed := flag.Int64("seed", 1, "random seed")
	domain := flag.Int("domain", 10_000, "TO domain size")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	distribution := data.Independent
	switch *dist {
	case "indep":
	case "anti":
		distribution = data.AntiCorrelated
	case "corr":
		distribution = data.Correlated
	default:
		fatalf("unknown distribution %q (want indep, anti or corr)", *dist)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("mkdir: %v", err)
	}

	rng := rand.New(rand.NewSource(*seed))
	dags := make([]*poset.DAG, *nPO)
	sizes := make([]int, *nPO)
	for i := range dags {
		dags[i] = data.Lattice(rng, *h, *d)
		sizes[i] = dags[i].N()
		if err := data.WriteDAGFile(filepath.Join(*out, fmt.Sprintf("dag_%d.txt", i)), dags[i]); err != nil {
			fatalf("write dag %d: %v", i, err)
		}
	}

	to := data.GenTO(rng, *n, *nTO, *domain, distribution)
	po := data.GenPO(rng, *n, sizes)

	f, err := os.Create(filepath.Join(*out, "data.csv"))
	if err != nil {
		fatalf("create data.csv: %v", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := make([]string, 0, *nTO+*nPO)
	for i := 0; i < *nTO; i++ {
		header = append(header, fmt.Sprintf("to_%d", i))
	}
	for i := 0; i < *nPO; i++ {
		header = append(header, fmt.Sprintf("po_%d", i))
	}
	if err := w.Write(header); err != nil {
		fatalf("write: %v", err)
	}
	row := make([]string, len(header))
	for i := 0; i < *n; i++ {
		for d := 0; d < *nTO; d++ {
			row[d] = strconv.Itoa(int(to[i][d]))
		}
		for d := 0; d < *nPO; d++ {
			row[*nTO+d] = strconv.Itoa(int(po[i][d]))
		}
		if err := w.Write(row); err != nil {
			fatalf("write: %v", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fatalf("flush: %v", err)
	}
	fmt.Printf("wrote %d rows (%d TO, %d PO) to %s\n", *n, *nTO, *nPO, *out)
	for i, s := range sizes {
		fmt.Printf("  dag_%d.txt: %d values, %d edges\n", i, s, dags[i].Edges())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
