package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/poset"

	"math/rand"
)

func TestWriteDAGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dag := data.Lattice(rng, 5, 0.9)
	dir := t.TempDir()
	path := filepath.Join(dir, "dag.txt")
	if err := data.WriteDAGFile(path, dag); err != nil {
		t.Fatal(err)
	}
	// Parse it back by hand and compare edge counts.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("empty file")
	}
	if strings.TrimSpace(sc.Text()) == "" {
		t.Fatal("missing node count")
	}
	edges := 0
	back := poset.NewDAG(dag.N())
	for sc.Scan() {
		var u, v int
		if _, err := parseEdge(sc.Text(), &u, &v); err != nil {
			t.Fatal(err)
		}
		back.MustEdge(u, v)
		edges++
	}
	if edges != dag.Edges() {
		t.Fatalf("wrote %d edges, DAG has %d", edges, dag.Edges())
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

// parseEdge mirrors tssquery's edge parsing for the round-trip test.
func parseEdge(line string, u, v *int) (int, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return 0, os.ErrInvalid
	}
	var err error
	*u, err = atoi(fields[0])
	if err != nil {
		return 0, err
	}
	*v, err = atoi(fields[1])
	if err != nil {
		return 0, err
	}
	return 2, nil
}

func atoi(s string) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, os.ErrInvalid
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}
