// Command tssbench regenerates the tables and figures of the paper's
// experimental evaluation (§VI). Each figure is reproduced with the
// paper's parameter sweep, scaled by -scale (1.0 = the paper's exact
// data cardinalities; the default keeps a full run laptop-sized).
//
// Usage:
//
//	tssbench -fig 7            # Figure 7 (static, total time vs N)
//	tssbench -fig 11           # Figure 11 (progressiveness)
//	tssbench -fig ablation     # the DESIGN.md ablations
//	tssbench -fig all -scale 0.05
//
// Output is a text table per sub-figure with a TSS-vs-SDC+ speedup
// column; EXPERIMENTS.md records a run next to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 7..14, ablation, cluster, maintain, parallel, plan, rank, serve, store, stream, table3, verify or all")
	scale := flag.Float64("scale", 0.02, "fraction of the paper's data cardinality (1.0 = full)")
	flag.Parse()

	start := time.Now()
	if err := run(os.Stdout, *fig, *scale); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

// run dispatches one figure (or "all") to the harness, writing reports
// to w.
func run(w io.Writer, fig string, scale float64) error {
	runOne := func(name string) error {
		switch name {
		case "7":
			exp.WriteRows(w, exp.Figure7(scale))
		case "8":
			exp.WriteRows(w, exp.Figure8(scale))
		case "9":
			exp.WriteRows(w, exp.Figure9(scale))
		case "10":
			exp.WriteRows(w, exp.Figure10(scale))
		case "11":
			exp.WriteProgress(w, exp.Figure11(scale))
		case "12":
			exp.WriteRows(w, exp.Figure12(scale))
		case "13":
			exp.WriteRows(w, exp.Figure13(scale))
		case "14":
			exp.WriteRows(w, exp.Figure14(scale))
		case "ablation":
			exp.WriteRows(w, exp.Ablations(scale))
		case "parallel":
			exp.WriteRows(w, exp.FigureParallel(scale))
		case "plan":
			exp.WritePlanRows(w, exp.FigurePlan(scale))
		case "rank":
			exp.WriteRankRows(w, exp.FigureRank(scale))
		case "serve":
			exp.WriteServeRows(w, exp.FigureServe(scale))
		case "cluster":
			writeClusterRows(w, figureCluster(scale))
		case "maintain":
			exp.WriteMaintainRows(w, exp.FigureMaintain(scale))
		case "store":
			exp.WriteStoreRows(w, exp.FigureStore(scale))
		case "stream":
			writeStreamRows(w, figureStream(scale))
		case "table3":
			exp.WriteTableIII(w, scale)
		case "verify":
			if err := exp.VerifyAgreement(scale); err != nil {
				return fmt.Errorf("verification FAILED: %w", err)
			}
			fmt.Fprintln(w, "all algorithms agree")
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		return nil
	}
	if fig == "all" {
		for _, name := range []string{"7", "8", "9", "10", "11", "12", "13", "14", "ablation", "cluster", "maintain", "parallel", "plan", "rank", "serve", "store", "stream"} {
			fmt.Fprintf(os.Stderr, "running figure %s (scale %.3g)...\n", name, scale)
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(fig)
}
