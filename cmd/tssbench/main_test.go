package main

import (
	"strings"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "table3", 0.5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("table3 output missing")
	}
	buf.Reset()
	if err := run(&buf, "verify", 0.0005); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "all algorithms agree") {
		t.Error("verify output missing")
	}
	if err := run(&buf, "nope", 1); err == nil {
		t.Error("unknown figure must error")
	}
}

func TestRunSingleFigure(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "9", 0.00005); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 9a") {
		t.Error("figure 9 output missing")
	}
}
