package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/exp"
	"repro/internal/serve"
	"repro/internal/store"
)

// ClusterRow is one measurement of the scatter/gather experiment: a
// query workload against an in-process cluster of N tssserve shard
// nodes behind a coordinator (real HTTP round trips over loopback).
type ClusterRow struct {
	Dist      string  // data distribution
	Shards    int     // shard fan-out
	Partition string  // hash | range
	Workload  string  // full | subspace | constrained | topk
	Queries   int     // queries issued
	Skyline   int     // merged skyline size of the last query
	AvgMs     float64 // wall-clock mean latency per query
	QPS       float64 // wall-clock queries per second
	Pruned    int64   // shard legs skipped by statistics pruning, total
}

// FigureCluster measures the tssserve cluster scenario: per-workload
// latency of scatter/gather queries as the shard fan-out grows
// (hash-partitioned, independent data), plus the shard-pruning cell —
// correlated data range-partitioned on to_0, where the low shard's
// rows dominate the high shard's entire key range, so the coordinator
// answers without contacting it.
func figureCluster(scale float64) []ClusterRow {
	cfg := exp.StaticDefaults(scale)
	const queries = 8
	var rows []ClusterRow

	indep := exp.BuildDataset(cfg)
	for _, shards := range []int{1, 2, 4} {
		spec := serve.SpecFromDataset("bench", indep)
		rows = append(rows, runClusterCell(cfg.Dist.String(), shards, "hash", spec, queries)...)
	}

	// Pruning cells: correlated data, range-partitioned on to_0 — the
	// BENCH acceptance rows demonstrating a dominated shard skipped.
	// With PO columns, pruning needs a gathered candidate whose PO
	// values top every preference order, so it reliably fires once the
	// query projects the PO columns away (the subspace workload); the
	// TO-only cell shows it firing on every workload.
	corrCfg := cfg
	corrCfg.Dist = data.Correlated
	corrCfg.Seed = 7
	corr := exp.BuildDataset(corrCfg)
	spec := serve.SpecFromDataset("bench", corr)
	spec.Partition = &serve.PartitionSpec{By: "range", Column: "to_0"}
	rows = append(rows, runClusterCell("Correlated", 2, "range", spec, queries)...)

	toOnly := corrCfg
	toOnly.PO = 0
	spec = serve.SpecFromDataset("bench", exp.BuildDataset(toOnly))
	spec.Partition = &serve.PartitionSpec{By: "range", Column: "to_0"}
	rows = append(rows, runClusterCell("Correlated/TO-only", 2, "range", spec, queries)...)
	return rows
}

// runClusterCell boots the cluster, loads the table and sweeps the
// workloads.
func runClusterCell(dist string, shards int, partition string, spec serve.TableSpec, queries int) []ClusterRow {
	servers := make([]*httptest.Server, shards)
	urls := make([]string, shards)
	for i := range servers {
		servers[i] = httptest.NewServer(serve.NewWithConfig(serve.Config{
			Shard: &serve.ShardIdentity{Index: i, Count: shards},
		}).Handler())
		urls[i] = servers[i].URL
	}
	// Range-partitioned cells need a catalog; in-memory is fine for a
	// benchmark that never restarts the coordinator.
	co, err := cluster.New(cluster.Config{Shards: urls, Catalog: store.NewMem()})
	if err != nil {
		panic(err)
	}
	front := httptest.NewServer(co.Handler(serve.New(8).Handler()))
	defer func() {
		front.Close()
		for _, s := range servers {
			s.Close()
		}
	}()
	postJSON(front.URL+"/tables", spec, nil)

	le := int64(3000)
	workloads := []struct {
		name string
		req  serve.QueryRequest
	}{
		{"full", serve.QueryRequest{Explain: true}},
		{"subspace", serve.QueryRequest{Subspace: []string{"to_0", "to_1"}}},
		{"constrained", serve.QueryRequest{Where: []serve.WhereSpec{{Col: "to_0", Le: &le}}}},
		{"topk", serve.QueryRequest{TopK: 10, Rank: "ideal", Ideal: make([]int64, len(spec.TOColumns))}},
	}
	var rows []ClusterRow
	for _, wl := range workloads {
		var pruned int64
		var last serve.QueryResponse
		start := time.Now()
		for q := 0; q < queries; q++ {
			postJSON(front.URL+"/tables/"+spec.Name+"/query", wl.req, &last)
			if last.Cluster != nil {
				pruned += int64(len(last.Cluster.Pruned))
			}
		}
		wall := time.Since(start)
		rows = append(rows, ClusterRow{
			Dist: dist, Shards: shards, Partition: partition, Workload: wl.name,
			Queries: queries,
			Skyline: last.Count,
			AvgMs:   wall.Seconds() / float64(queries) * 1000,
			QPS:     float64(queries) / wall.Seconds(),
			Pruned:  pruned,
		})
	}
	return rows
}

func postJSON(url string, body, out any) {
	buf, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		panic(fmt.Sprintf("POST %s: HTTP %d: %s", url, resp.StatusCode, e.Error))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			panic(err)
		}
	}
}

// WriteClusterRows renders the scatter/gather experiment: per-workload
// coordinator latency by shard fan-out, plus the range-partition
// pruning cell (pruned = shard legs skipped by statistics pruning).
func writeClusterRows(w io.Writer, rows []ClusterRow) {
	fmt.Fprintln(w, "Cluster — scatter/gather latency by shard fan-out (in-process HTTP)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dist\tshards\tpartition\tworkload\tqueries\tskyline\tavg(ms)\tqps\tpruned")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%d\t%d\t%.3f\t%.0f\t%d\n",
			r.Dist, r.Shards, r.Partition, r.Workload, r.Queries, r.Skyline,
			r.AvgMs, r.QPS, r.Pruned)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
