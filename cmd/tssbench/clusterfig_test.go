package main

import "testing"

// TestFigureClusterSmoke keeps the scatter/gather figure from
// bit-rotting and pins the acceptance property: the range-partitioned
// correlated cells must demonstrate shard pruning.
func TestFigureClusterSmoke(t *testing.T) {
	rows := figureCluster(0.002)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	prunedSomewhere := false
	for _, r := range rows {
		if r.Queries <= 0 || r.AvgMs < 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.Partition == "range" && r.Pruned > 0 {
			prunedSomewhere = true
		}
	}
	if !prunedSomewhere {
		t.Fatal("no range cell demonstrated shard pruning")
	}
}
