package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/exp"
	"repro/internal/serve"
)

// streamK is the first-K target of the streaming experiment: the row
// count a progressive client waits for before acting.
const streamK = 10

// StreamBenchRow is one measurement of the progressive-delivery
// experiment: the same query answered buffered (one JSON body after the
// full computation) and streamed (?stream=1, NDJSON), with the streamed
// run decomposed into time-to-first-row, time-to-K and time-to-full.
type StreamBenchRow struct {
	Setting  string  // single | 2-shard hash | 2-shard range …
	Workload string  // full | topk
	Rows     int     // table rows
	Skyline  int     // certified rows of the last streamed run
	BufMs    float64 // buffered end-to-end latency (best of reps)
	TTFRMs   float64 // streamed: first row on the wire
	TTKMs    float64 // streamed: K-th row on the wire
	TTFullMs float64 // streamed: trailer received
}

// figureStream measures what streaming buys: a progressive client sees
// its first certified row (and its K-th) long before the buffered
// response would even start, and a streamed unranked top-k terminates
// the query — including a cluster scatter — as soon as K rows certify
// instead of over-fetching every shard's full local skyline.
func figureStream(scale float64) []StreamBenchRow {
	cfg := exp.StaticDefaults(scale)
	const reps = 3
	var rows []StreamBenchRow

	ds := exp.BuildDataset(cfg)
	spec := serve.SpecFromDataset("bench", ds)
	srv := httptest.NewServer(serve.New(8).Handler())
	postJSON(srv.URL+"/tables", spec, nil)
	rows = append(rows, runStreamCell("single", srv.URL, spec, reps)...)
	srv.Close()

	rows = append(rows, runStreamClusterCell("2-shard hash", 2, spec, reps)...)

	// Range-partitioned correlated data: the incremental merge certifies
	// the low shard's rows while the high shard is still streaming, so
	// first-K latency tracks the best shard, not the gather barrier.
	corrCfg := cfg
	corrCfg.Dist = data.Correlated
	corrCfg.Seed = 7
	corrSpec := serve.SpecFromDataset("bench", exp.BuildDataset(corrCfg))
	corrSpec.Partition = &serve.PartitionSpec{By: "range", Column: "to_0"}
	rows = append(rows, runStreamClusterCell("2-shard range corr", 2, corrSpec, reps)...)
	return rows
}

// runStreamClusterCell boots an in-process cluster and runs the cell
// against the coordinator.
func runStreamClusterCell(setting string, shards int, spec serve.TableSpec, reps int) []StreamBenchRow {
	servers := make([]*httptest.Server, shards)
	urls := make([]string, shards)
	for i := range servers {
		servers[i] = httptest.NewServer(serve.NewWithConfig(serve.Config{
			Shard: &serve.ShardIdentity{Index: i, Count: shards},
		}).Handler())
		urls[i] = servers[i].URL
	}
	co, err := cluster.New(cluster.Config{Shards: urls})
	if err != nil {
		panic(err)
	}
	front := httptest.NewServer(co.Handler(serve.New(8).Handler()))
	defer func() {
		front.Close()
		for _, s := range servers {
			s.Close()
		}
	}()
	postJSON(front.URL+"/tables", spec, nil)
	return runStreamCell(setting, front.URL, spec, reps)
}

// runStreamCell measures the full-skyline and unranked top-K workloads,
// buffered and streamed, best-of-reps per metric.
func runStreamCell(setting, base string, spec serve.TableSpec, reps int) []StreamBenchRow {
	skylineURL := base + "/tables/" + spec.Name + "/skyline"
	queryURL := base + "/tables/" + spec.Name + "/query"
	topkReq := serve.QueryRequest{TopK: streamK}

	cell := func(workload string, buffered func() int, streamed func() (time.Duration, time.Duration, time.Duration, int)) StreamBenchRow {
		row := StreamBenchRow{Setting: setting, Workload: workload, Rows: len(spec.Rows)}
		// Streamed reps first: an early-terminated or NoCache streamed run
		// fills no memo, so every rep — and the buffered run after them —
		// measures a cold query, the latency a fresh client sees.
		var count int
		for rep := 0; rep < reps; rep++ {
			ttfr, ttk, ttfull, n := streamed()
			row.TTFRMs = minMs(row.TTFRMs, ttfr)
			row.TTKMs = minMs(row.TTKMs, ttk)
			row.TTFullMs = minMs(row.TTFullMs, ttfull)
			count = n
		}
		start := time.Now()
		row.Skyline = buffered()
		row.BufMs = minMs(row.BufMs, time.Since(start))
		if workload == "full" {
			row.Skyline = count
		}
		return row
	}

	// topk first: its buffered over-fetch then runs against cold shard
	// caches, like a fresh client would see (the full workload's scatter
	// would otherwise warm every shard's memo).
	topk := cell("topk",
		func() int {
			var out serve.QueryResponse
			postJSON(queryURL, topkReq, &out)
			return out.Count
		},
		func() (time.Duration, time.Duration, time.Duration, int) {
			return streamTimes(http.MethodPost, queryURL+"?stream=1", topkReq)
		})
	full := cell("full",
		func() int {
			var out serve.QueryResponse
			getJSONBench(skylineURL, &out)
			return out.Count
		},
		func() (time.Duration, time.Duration, time.Duration, int) {
			return streamTimes(http.MethodGet, skylineURL+"?stream=1", nil)
		})
	return []StreamBenchRow{topk, full}
}

func minMs(cur float64, d time.Duration) float64 {
	ms := d.Seconds() * 1000
	if cur == 0 || ms < cur {
		return ms
	}
	return cur
}

// streamTimes issues one streamed request and clocks the frames.
func streamTimes(method, url string, body any) (ttfr, ttk, ttfull time.Duration, count int) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			panic(err)
		}
		rd = bytes.NewReader(buf)
	}
	start := time.Now()
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		panic(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("%s %s: HTTP %d", method, url, resp.StatusCode))
	}
	dec := json.NewDecoder(resp.Body)
	rows := 0
	for {
		var rec serve.StreamRecord
		if err := dec.Decode(&rec); err != nil {
			panic(err)
		}
		switch rec.Type {
		case "row":
			rows++
			if rows == 1 {
				ttfr = time.Since(start)
			}
			if rows == streamK {
				ttk = time.Since(start)
			}
		case "error":
			panic(rec.Error)
		case "trailer":
			ttfull = time.Since(start)
			count = rec.Count
			if ttfr == 0 {
				ttfr = ttfull
			}
			if ttk == 0 {
				ttk = ttfull
			}
			return
		}
	}
}

func getJSONBench(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		panic(fmt.Sprintf("GET %s: HTTP %d", url, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}

// writeStreamRows renders the progressive-delivery experiment.
func writeStreamRows(w io.Writer, rows []StreamBenchRow) {
	fmt.Fprintln(w, "Stream — progressive delivery vs buffered (in-process HTTP, K=10)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "setting\tworkload\trows\tskyline\tbuffered(ms)\tttfr(ms)\tttK(ms)\tttfull(ms)\tttfr/buf")
	for _, r := range rows {
		ratio := 0.0
		if r.BufMs > 0 {
			ratio = r.TTFRMs / r.BufMs
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Setting, r.Workload, r.Rows, r.Skyline,
			r.BufMs, r.TTFRMs, r.TTKMs, r.TTFullMs, ratio)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
