package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// TestFailoverIntegration is the end-to-end replication test behind the
// CI failover job: real tssserve processes — two shard primaries (each
// durable), one -follower-of mirror per shard, a durable coordinator
// wired with -replicas — a range-partitioned table populated through
// the coordinator, then:
//
//  1. SIGKILL one shard primary: the coordinator must keep answering
//     every variant identically to a single node holding the union,
//     with the follower serving the dead shard's partition.
//  2. SIGTERM + restart the coordinator: Adopt must recover the range
//     partition spec (bounds intact) from the durable catalog — while
//     the killed primary is still dead, so adoption itself exercises
//     the failover path — and the sweep must stay identical.
func TestFailoverIntegration(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("process signalling differs on windows")
	}
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "tssserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	start := func(addr string, args ...string) *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Signal(syscall.SIGTERM)
			cmd.Wait()
		})
		waitHealthy(t, "http://"+addr)
		return cmd
	}
	newAddr := func() string { return fmt.Sprintf("127.0.0.1:%d", freePort(t)) }

	// Topology: primaries are durable (their WALs feed replication),
	// followers poll fast so the test converges quickly, and the
	// coordinator is durable so its catalog survives the restart.
	p0Addr, p1Addr, f0Addr, f1Addr := newAddr(), newAddr(), newAddr(), newAddr()
	p0 := start(p0Addr, "-shard-of", "0/2", "-data-dir", filepath.Join(t.TempDir(), "p0"))
	start(p1Addr, "-shard-of", "1/2", "-data-dir", filepath.Join(t.TempDir(), "p1"))
	start(f0Addr, "-follower-of", "http://"+p0Addr, "-follower-interval", "100ms")
	start(f1Addr, "-follower-of", "http://"+p1Addr, "-follower-interval", "100ms")

	coDir := filepath.Join(t.TempDir(), "co")
	coAddr := newAddr()
	coArgs := []string{
		"-data-dir", coDir,
		"-coordinator", "http://" + p0Addr + ",http://" + p1Addr,
		"-replicas", "http://" + f0Addr + ",http://" + f1Addr,
	}
	co := start(coAddr, coArgs...)
	coord := "http://" + coAddr

	singleAddr := newAddr()
	start(singleAddr)
	single := "http://" + singleAddr

	// A range-partitioned table (split on x at 500) created through the
	// coordinator, mirrored verbatim on the single node.
	rng := rand.New(rand.NewSource(7))
	spec := serve.TableSpec{
		Name:      "ft",
		TOColumns: []string{"x", "y"},
		Orders: []serve.OrderSpec{{
			Name:   "cls",
			Values: []string{"a", "b", "c", "d"},
			Edges:  [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}},
		}},
		Partition: &serve.PartitionSpec{By: "range", Column: "x", Bounds: []int64{500}},
	}
	for i := 0; i < 180; i++ {
		spec.Rows = append(spec.Rows, serve.RowSpec{
			TO: []int64{int64(rng.Intn(1000)), int64(rng.Intn(1000))},
			PO: []string{spec.Orders[0].Values[rng.Intn(4)]},
		})
	}
	postJSON(t, coord+"/tables", spec, nil)
	singleSpec := spec
	singleSpec.Partition = nil // partitioning is a cluster concern
	postJSON(t, single+"/tables", singleSpec, nil)

	// Mutations through the coordinator while everything is healthy —
	// one add per side of the split, mirrored on the single node.
	batch := serve.BatchRequest{Add: []serve.RowSpec{
		{TO: []int64{3, 996}, PO: []string{"a"}},
		{TO: []int64{996, 3}, PO: []string{"d"}},
	}}
	postJSON(t, coord+"/tables/ft/rows:batch", batch, nil)
	single2 := spec
	single2.Rows = append(append([]serve.RowSpec(nil), spec.Rows...), batch.Add...)
	deleteTable(t, single+"/tables/ft")
	single2.Partition = nil
	postJSON(t, single+"/tables", single2, nil)

	// Followers must hold the exact pre-kill state before the kill —
	// anything else would test replication lag, not failover.
	var info serve.TableInfo
	getJSON(t, coord+"/tables/ft", &info)
	if len(info.Versions) != 2 {
		t.Fatalf("coordinator version vector %v, want 2 entries", info.Versions)
	}
	for i, faddr := range []string{f0Addr, f1Addr} {
		waitForVersion(t, "http://"+faddr+"/tables/ft", info.Versions[i])
	}

	// A follower never takes writes, even directly.
	breq, _ := json.Marshal(serve.BatchRequest{Add: []serve.RowSpec{{TO: []int64{1, 1}, PO: []string{"a"}}}})
	resp, err := http.Post("http://"+f0Addr+"/tables/ft/rows:batch", "application/json", bytes.NewReader(breq))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("direct batch against a follower: HTTP %d, want 403", resp.StatusCode)
	}

	le := int64(400)
	variants := []struct {
		name string
		req  serve.QueryRequest
	}{
		{"full", serve.QueryRequest{Explain: true}},
		{"subspace", serve.QueryRequest{Subspace: []string{"x", "cls"}}},
		{"constrained", serve.QueryRequest{Where: []serve.WhereSpec{{Col: "x", Le: &le}}}},
		{"topk", serve.QueryRequest{TopK: 5, Rank: "ideal", Ideal: []int64{500, 500}}},
	}
	sweep := func(phase string) {
		t.Helper()
		for _, v := range variants {
			var c, s serve.QueryResponse
			postJSON(t, coord+"/tables/ft/query", v.req, &c)
			postJSON(t, single+"/tables/ft/query", v.req, &s)
			if c.Count != s.Count {
				t.Fatalf("%s/%s: coordinator count %d, single %d", phase, v.name, c.Count, s.Count)
			}
			ck, sk := valueKeys(c.Skyline), valueKeys(s.Skyline)
			for i := range ck {
				if ck[i] != sk[i] {
					t.Fatalf("%s/%s: results diverge:\n coord:  %v\n single: %v", phase, v.name, ck, sk)
				}
			}
		}
	}
	sweep("healthy")

	// SIGKILL shard 0's primary — no drain, no goodbye.
	if err := p0.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p0.Wait()

	sweep("post-kill")
	var cz cluster.ClusterzInfo
	getJSON(t, coord+"/clusterz", &cz)
	if cz.Failovers == 0 {
		t.Fatal("post-kill sweep passed but the coordinator counted no failovers")
	}
	if len(cz.Tables) != 1 || len(cz.Tables[0].Versions) != 2 || cz.Tables[0].Versions[0] != -1 {
		t.Fatalf("clusterz after kill: %+v, want versions [-1, v] for ft", cz.Tables)
	}

	// Coordinator restart with the primary still dead: the durable
	// catalog must restore the range spec (Adopt's probes fail over to
	// the followers), not silently fall back to hash routing.
	co.Process.Signal(syscall.SIGTERM)
	co.Wait()
	start(coAddr, coArgs...)

	part := waitForAdoption(t, coord+"/clusterz")
	if part.By != "range" || part.Column != "x" ||
		len(part.Bounds) != 1 || part.Bounds[0] != 500 {
		t.Fatalf("restarted coordinator adopted partition %+v, want range on x at [500]", part)
	}
	sweep("post-restart")
}

// waitForVersion polls a table-info URL until the served version
// reaches at least want.
func waitForVersion(t *testing.T, url string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			var info serve.TableInfo
			ok := json.NewDecoder(resp.Body).Decode(&info) == nil
			resp.Body.Close()
			if ok && resp.StatusCode == http.StatusOK && info.Version >= want {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never reached version %d", url, want)
}

// waitForAdoption polls /clusterz until the restarted coordinator has
// adopted its table, and returns the adopted partition spec.
func waitForAdoption(t *testing.T, url string) serve.PartitionSpec {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var cz struct {
			Tables []struct {
				Name      string              `json:"name"`
				Partition serve.PartitionSpec `json:"partition"`
			} `json:"tables"`
		}
		resp, err := http.Get(url)
		if err == nil {
			ok := json.NewDecoder(resp.Body).Decode(&cz) == nil
			resp.Body.Close()
			if ok && len(cz.Tables) == 1 {
				return cz.Tables[0].Partition
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("restarted coordinator never adopted the cluster table")
	return serve.PartitionSpec{}
}
