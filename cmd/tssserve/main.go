// Command tssserve is the HTTP/JSON skyline query server: a catalog of
// named tables served to concurrent clients with copy-on-write
// snapshot isolation. Static skylines dispatch through the algorithm
// registry (?algo=, ?parallel=); dynamic queries bring per-request
// preference DAGs and are answered by the prepared dTSS database and
// its result cache; batched mutations derive the next snapshot
// incrementally and atomically swap it in without blocking readers.
//
//	tssserve -addr :8080 -table flights=./work -cache 128
//	tssserve -addr :8080 -data-dir ./tss-data -checkpoint-every 4194304
//
// With -data-dir the catalog is durable: every batch is appended to a
// CRC-checked write-ahead log *before* its snapshot is published, logs
// are checkpointed into columnar snapshots once they pass
// -checkpoint-every bytes, and on startup every persisted table is
// recovered to its last acknowledged version (snapshot + WAL replay).
// -no-fsync trades power-failure durability for append latency.
//
// Preload tables from tssgen output directories with repeated -table
// name=dir flags, or create them over HTTP (POST /tables). Endpoints:
//
//	GET    /healthz                     liveness
//	GET    /statsz                      catalog + traffic statistics
//	GET    /tables                      list tables
//	POST   /tables                      create a table
//	GET    /tables/{name}               table info
//	DELETE /tables/{name}               drop a table
//	GET    /tables/{name}/skyline       static skyline (?algo=, ?parallel=, ?limit=)
//	POST   /tables/{name}/rows:batch    batched mutation
//	POST   /tables/{name}/query         dynamic query (per-request DAGs)
//
// tssquery -serve <url> is the matching thin client. SIGINT/SIGTERM
// drain in-flight requests before exit (graceful shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// tableFlags collects repeated -table name=dir values.
type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var tables tableFlags
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", serve.DefaultCacheCapacity, "per-table dynamic result cache capacity")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	requestTimeout := flag.Duration("request-timeout", 0,
		"per-request time budget: planned queries are canceled cooperatively via the request context; dynamic (orders) queries check it only before starting (0 = unlimited)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
	checkpointEvery := flag.Int64("checkpoint-every", serve.DefaultCheckpointEvery,
		"WAL bytes after which a batch checkpoints its table into a fresh snapshot")
	noFsync := flag.Bool("no-fsync", false,
		"skip fsync on WAL appends and snapshot writes (faster; unsafe across power failures)")
	flag.Var(&tables, "table", "preload a table from a tssgen output dir, as name=dir (repeatable)")
	flag.Parse()

	cfg := serve.Config{CacheCapacity: *cache, CheckpointEvery: *checkpointEvery}
	if *dataDir != "" {
		st, err := store.OpenDisk(*dataDir, store.DiskOptions{NoFsync: *noFsync})
		if err != nil {
			fatalf("open data dir %q: %v", *dataDir, err)
		}
		defer st.Close()
		cfg.Store = st
	}
	s := serve.NewWithConfig(cfg)
	recovered, err := s.Recover()
	if err != nil {
		fatalf("recover: %v", err)
	}
	for _, info := range recovered {
		fmt.Printf("recovered table %q: version %d, %d rows, %d groups\n",
			info.Name, info.Version, info.Rows, info.Groups)
	}
	for _, spec := range tables {
		name, dir, ok := strings.Cut(spec, "=")
		if !ok {
			fatalf("bad -table %q (want name=dir)", spec)
		}
		info, err := s.LoadCSVDir(name, dir)
		if err != nil {
			// A recovered table of the same name wins over the preload:
			// its durable state is strictly newer than the seed files.
			if errors.Is(err, serve.ErrTableExists) {
				fmt.Printf("table %q already recovered from the data dir; skipping preload\n", name)
				continue
			}
			fatalf("load table %q: %v", name, err)
		}
		fmt.Printf("loaded table %q: %d rows, %d groups\n", info.Name, info.Rows, info.Groups)
	}

	handler := s.Handler()
	if *requestTimeout > 0 {
		handler = withRequestTimeout(handler, *requestTimeout)
	}
	// Slow-client hardening: a peer that trickles its headers or parks
	// an idle keep-alive connection must not pin a goroutine (or a file
	// descriptor) forever. Request *bodies* stay untimed — batch uploads
	// may legitimately be large; -request-timeout bounds the work.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("tssserve listening on %s\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatalf("shutdown: %v", err)
		}
	}
}

// withRequestTimeout bounds each request's context. Planned queries
// check it cooperatively (the executor between pipeline stages and
// inside its scan loops) and answer 503 on expiry, releasing the
// worker; dynamic dTSS queries do not take a context, so they check
// the budget only before starting and run to completion once begun.
func withRequestTimeout(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
