// Command tssserve is the HTTP/JSON skyline query server: a catalog of
// named tables served to concurrent clients with copy-on-write
// snapshot isolation. Static skylines dispatch through the algorithm
// registry (?algo=, ?parallel=); dynamic queries bring per-request
// preference DAGs and are answered by the prepared dTSS database and
// its result cache; batched mutations derive the next snapshot
// incrementally and atomically swap it in without blocking readers.
//
//	tssserve -addr :8080 -table flights=./work -cache 128
//	tssserve -addr :8080 -data-dir ./tss-data -checkpoint-every 4194304
//	tssserve -addr :8081 -shard-of 0/2                       # shard node
//	tssserve -addr :8082 -follower-of http://h1:8081         # read-only mirror
//	tssserve -addr :8080 -data-dir ./co -coordinator http://h1:8081,http://h2:8081 \
//	         -replicas http://h1f:8082,http://h2f:8082
//
// With -data-dir the catalog is durable: every batch is appended to a
// CRC-checked write-ahead log *before* its snapshot is published, logs
// are checkpointed into columnar snapshots once they pass
// -checkpoint-every bytes, and on startup every persisted table is
// recovered to its last acknowledged version (snapshot + WAL replay).
// -no-fsync trades power-failure durability for append latency.
//
// With -coordinator the node fronts a cluster: POST /tables partitions
// rows over the listed shard nodes (hash by default, range via the
// spec's "partition" field), queries are planned once against merged
// per-shard statistics, fanned out, and merged with a t-dominance
// elimination pass (dominated shards pruned via their /stats corners),
// and batches are routed by the partitioner with a per-shard version
// vector in every response. -shard-of i/n declares a shard's identity,
// surfaced in /statsz and checked against the coordinator's routing
// assertion (mismatch = 409). One process may carry both flags — the
// coordinator's scatter traffic bypasses its own cluster layer. A
// coordinator with -data-dir persists its cluster catalog (partition
// kind, range bounds, shard count), so a restart restores real
// placement; without it, range-partitioned creates are refused.
//
// With -follower-of the node is a read-only mirror of one primary:
// every table bootstrap-seeds from the primary's columnar snapshot,
// then tails its committed WAL frames and applies each record through
// the normal batch path. HTTP mutations answer 403; reads can demand
// freshness with ?minVersion=N (412 until the mirror reaches N). Add
// -data-dir to make the mirror itself durable. A coordinator given
// -replicas (follower URLs per shard, comma-separated by shard index,
// '|' between one shard's followers) fails read legs over to a
// follower when the primary is unreachable — pinned to the version the
// scatter already observed — while mutations never fail over, so a
// dead primary degrades its shard to read-only instead of serving
// wrong answers. Replication is asynchronous: frames the primary
// acknowledged but had not yet shipped are unavailable until its disk
// returns.
//
// Preload tables from tssgen output directories with repeated -table
// name=dir flags, or create them over HTTP (POST /tables). Endpoints:
//
//	GET    /healthz                     liveness
//	GET    /statsz                      catalog + traffic statistics
//	GET    /clusterz                    cluster topology (coordinator only)
//	GET    /tables                      list tables
//	POST   /tables                      create a table
//	GET    /tables/{name}               table info
//	DELETE /tables/{name}               drop a table
//	GET    /tables/{name}/skyline       static skyline (?algo=, ?parallel=, ?limit=)
//	GET    /tables/{name}/stats         planner statistics + learned state
//	POST   /tables/{name}/rows:batch    batched mutation
//	POST   /tables/{name}/query         dynamic query (per-request DAGs)
//	POST   /tables/{name}/domcount      dominance counts for candidate rows
//	GET    /tables/{name}/replica/snapshot  columnar snapshot (follower bootstrap)
//	GET    /tables/{name}/replica/log       committed WAL frames past ?after=N
//
// tssquery -serve <url> is the matching thin client and works
// unchanged against a coordinator. SIGINT/SIGTERM drain in-flight
// requests before exit (graceful shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/store"
)

// parseReplicas decodes the -replicas value: one comma-separated entry
// per shard index, '|' between one shard's followers, blank entries for
// shards without followers ("f0,,f2|f2b").
func parseReplicas(v string) [][]string {
	if strings.TrimSpace(v) == "" {
		return nil
	}
	var out [][]string
	for _, entry := range strings.Split(v, ",") {
		var followers []string
		for _, u := range strings.Split(entry, "|") {
			if u = strings.TrimSpace(u); u != "" {
				followers = append(followers, u)
			}
		}
		out = append(out, followers)
	}
	return out
}

// tableFlags collects repeated -table name=dir values.
type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var tables tableFlags
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", serve.DefaultCacheCapacity, "per-table dynamic result cache capacity")
	subspaceCacheCap := flag.Int("subspace-cache-cap", 0,
		"per-table subspace/constrained skyline memo capacity (0 = default, currently 32); surfaced in /statsz as planCache.subspaceCapacity")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	requestTimeout := flag.Duration("request-timeout", 0,
		"per-request time budget: planned and dynamic (orders) queries are canceled cooperatively mid-run via the request context; only baseline (SDC+) dynamic queries still check it before starting only (0 = unlimited)")
	shardOf := flag.String("shard-of", "",
		"this node's cluster identity as index/count (e.g. 0/2): shown in /statsz and enforced against the coordinator's routing assertion")
	coordinator := flag.String("coordinator", "",
		"comma-separated shard base URLs: serve as the cluster coordinator over them (scatter/gather; may combine with -shard-of on one process)")
	replicas := flag.String("replicas", "",
		"per-shard follower base URLs for the coordinator, comma-separated by shard index with '|' between one shard's followers (e.g. http://f0a|http://f0b,http://f1): reads fail over to them when the primary is unreachable; mutations never do")
	followerOf := flag.String("follower-of", "",
		"primary base URL: run as a read-only replication follower mirroring every table of the primary (combine with -data-dir for a durable mirror)")
	followerInterval := flag.Duration("follower-interval", replica.DefaultInterval,
		"replication poll cadence in follower mode")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
	checkpointEvery := flag.Int64("checkpoint-every", serve.DefaultCheckpointEvery,
		"WAL bytes after which a batch checkpoints its table into a fresh snapshot")
	noFsync := flag.Bool("no-fsync", false,
		"skip fsync on WAL appends and snapshot writes (faster; unsafe across power failures)")
	noMaintain := flag.Bool("no-maintain", false,
		"disable incremental skyline-memo maintenance: every batch starts a fresh memo and post-batch queries recompute from cold (benchmark/differential switch)")
	pprofAddr := flag.String("pprof", "",
		"expose net/http/pprof on this separate listen address (e.g. localhost:6060; empty = off) — kept off the serving listener so profiling is never part of the public API surface")
	flag.Var(&tables, "table", "preload a table from a tssgen output dir, as name=dir (repeatable)")
	flag.Parse()

	if *followerOf != "" && *coordinator != "" {
		fatalf("-follower-of and -coordinator are mutually exclusive (a follower mirrors one primary)")
	}
	if *followerOf != "" && len(tables) > 0 {
		fatalf("-table preloads cannot combine with -follower-of (the primary owns the mirror's tables)")
	}
	if *replicas != "" && *coordinator == "" {
		fatalf("-replicas only applies to a coordinator (-coordinator)")
	}
	cfg := serve.Config{
		CacheCapacity:    *cache,
		SubspaceCacheCap: *subspaceCacheCap,
		CheckpointEvery:  *checkpointEvery,
		ReadOnly:         *followerOf != "",
		NoMaintain:       *noMaintain,
	}
	if *shardOf != "" {
		var idx, count int
		if n, err := fmt.Sscanf(*shardOf, "%d/%d", &idx, &count); n != 2 || err != nil ||
			idx < 0 || count < 1 || idx >= count {
			fatalf("bad -shard-of %q (want index/count, e.g. 0/2)", *shardOf)
		}
		cfg.Shard = &serve.ShardIdentity{Index: idx, Count: count}
	}
	if *dataDir != "" {
		st, err := store.OpenDisk(*dataDir, store.DiskOptions{NoFsync: *noFsync})
		if err != nil {
			fatalf("open data dir %q: %v", *dataDir, err)
		}
		defer st.Close()
		cfg.Store = st
	}
	s := serve.NewWithConfig(cfg)
	recovered, err := s.Recover()
	if err != nil {
		fatalf("recover: %v", err)
	}
	for _, info := range recovered {
		fmt.Printf("recovered table %q: version %d, %d rows, %d groups\n",
			info.Name, info.Version, info.Rows, info.Groups)
	}
	for _, spec := range tables {
		name, dir, ok := strings.Cut(spec, "=")
		if !ok {
			fatalf("bad -table %q (want name=dir)", spec)
		}
		info, err := s.LoadCSVDir(name, dir)
		if err != nil {
			// A recovered table of the same name wins over the preload:
			// its durable state is strictly newer than the seed files.
			if errors.Is(err, serve.ErrTableExists) {
				fmt.Printf("table %q already recovered from the data dir; skipping preload\n", name)
				continue
			}
			fatalf("load table %q: %v", name, err)
		}
		fmt.Printf("loaded table %q: %d rows, %d groups\n", info.Name, info.Rows, info.Groups)
	}

	handler := s.Handler()
	var co *cluster.Coordinator
	if *coordinator != "" {
		co, err = cluster.New(cluster.Config{
			Shards:   strings.Split(*coordinator, ","),
			Replicas: parseReplicas(*replicas),
			// The serve store doubles as the coordinator's durable catalog
			// (distinct meta key), so -data-dir restores partition specs —
			// range bounds included — across restarts.
			Catalog: cfg.Store,
		})
		if err != nil {
			fatalf("coordinator: %v", err)
		}
		handler = co.Handler(handler)
		fmt.Printf("coordinating %d shards\n", co.NumShards())
	}
	var follower *replica.Follower
	if *followerOf != "" {
		follower, err = replica.New(replica.Config{
			Primary:  *followerOf,
			Server:   s,
			Interval: *followerInterval,
			Logf:     func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
		})
		if err != nil {
			fatalf("follower: %v", err)
		}
	}
	if *requestTimeout > 0 {
		handler = withRequestTimeout(handler, *requestTimeout)
	}
	// Slow-client hardening: a peer that trickles its headers or parks
	// an idle keep-alive connection must not pin a goroutine (or a file
	// descriptor) forever. Request *bodies* stay untimed — batch uploads
	// may legitimately be large; -request-timeout bounds the work.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("tssserve listening on %s\n", *addr)
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pprofMux()); err != nil &&
				!errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("pprof listening on %s\n", *pprofAddr)
	}
	followCtx, stopFollow := context.WithCancel(context.Background())
	defer stopFollow()
	if follower != nil {
		go follower.Run(followCtx)
		fmt.Printf("following %s (read-only mirror, poll %s)\n", *followerOf, *followerInterval)
	}
	if co != nil {
		// Rebuild the cluster catalog from the shards: tables created
		// before a coordinator restart resume serving. Tables recorded in
		// the durable catalog (-data-dir) come back with their persisted
		// partition spec — range bounds intact; the rest were hash-routed
		// to begin with. The probes fail over to -replicas followers, so a
		// dead primary does not block adoption. This must run *after* the
		// listener is up — a dual-role node's shard list includes its own
		// address — and retries while peers are still starting. Until
		// adoption completes, requests for not-yet-adopted tables fall
		// through to the local catalog.
		go func() {
			for attempt := 0; attempt < 20; attempt++ {
				adoptCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				adopted, err := co.Adopt(adoptCtx)
				cancel()
				if err == nil {
					for _, name := range adopted {
						fmt.Printf("adopted cluster table %q\n", name)
					}
					return
				}
				time.Sleep(500 * time.Millisecond)
			}
			fmt.Println("coordinator: shard catalog not adopted (shards unreachable); serving new tables only")
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatalf("shutdown: %v", err)
		}
	}
}

// withRequestTimeout bounds each request's context. Planned and
// dynamic (dTSS, fully dynamic) queries check it cooperatively —
// the executor between pipeline stages and inside its scan loops, the
// dynamic cursor between point groups and inside each group's index
// traversal — and answer 503 on expiry, releasing the worker. Only the
// baseline (SDC+) dynamic path still checks the budget before starting
// and then runs to completion.
func withRequestTimeout(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// pprofMux builds the profiling handler for the -pprof side listener.
// An explicit mux (rather than net/http/pprof's DefaultServeMux
// registration) keeps the profiling routes bound to the address the
// operator chose and nothing else.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
