package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestKillAndRestart is the end-to-end durability test: a real
// tssserve process is populated over HTTP, terminated with SIGTERM,
// and restarted on the same -data-dir; every table must come back at
// its last published version with identical skyline results.
func TestKillAndRestart(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM semantics differ on windows")
	}
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "tssserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	base := "http://" + addr

	// Epoch 1: start, create a table, run a few batches.
	proc := startServer(t, bin, addr, dataDir)
	spec := serve.TableSpec{
		Name:      "flights",
		TOColumns: []string{"price", "stops"},
		Orders: []serve.OrderSpec{{
			Name:   "airline",
			Values: []string{"a", "b", "c", "d"},
			Edges:  [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}},
		}},
	}
	for i := 0; i < 10; i++ {
		spec.Rows = append(spec.Rows, serve.RowSpec{
			TO: []int64{int64(500 + 137*i%900), int64(i % 3)},
			PO: []string{spec.Orders[0].Values[i%4]},
		})
	}
	postJSON(t, base+"/tables", spec, nil)
	for i := 0; i < 4; i++ {
		req := serve.BatchRequest{
			Remove: []int{i},
			Add:    []serve.RowSpec{{TO: []int64{int64(100 + i), 0}, PO: []string{"d"}}},
		}
		var resp serve.BatchResponse
		postJSON(t, base+"/tables/flights/rows:batch", req, &resp)
		if resp.Version != int64(i+1) {
			t.Fatalf("batch %d: version %d", i, resp.Version)
		}
	}
	var statsBefore serve.StatsResponse
	getJSON(t, base+"/statsz", &statsBefore)
	var skylineBefore serve.QueryResponse
	getJSON(t, base+"/tables/flights/skyline", &skylineBefore)

	// SIGTERM and wait for a clean exit.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc.Wait(); err != nil {
		t.Fatalf("server exit: %v", err)
	}

	// Epoch 2: restart on the same data dir.
	proc2 := startServer(t, bin, addr, dataDir)
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()

	var statsAfter serve.StatsResponse
	getJSON(t, base+"/statsz", &statsAfter)
	if !statsAfter.Durable {
		t.Fatal("restarted server not durable")
	}
	if len(statsAfter.Tables) != 1 {
		t.Fatalf("recovered %d tables", len(statsAfter.Tables))
	}
	got, want := statsAfter.Tables[0], statsBefore.Tables[0]
	if got.Version != want.Version || got.Rows != want.Rows || got.Groups != want.Groups {
		t.Fatalf("recovered table %+v, want version=%d rows=%d groups=%d",
			got, want.Version, want.Rows, want.Groups)
	}
	var skylineAfter serve.QueryResponse
	getJSON(t, base+"/tables/flights/skyline", &skylineAfter)
	if skylineAfter.Version != skylineBefore.Version || skylineAfter.Count != skylineBefore.Count {
		t.Fatalf("skyline version/count %d/%d, want %d/%d",
			skylineAfter.Version, skylineAfter.Count, skylineBefore.Version, skylineBefore.Count)
	}
	if !reflect.DeepEqual(skylineAfter.Skyline, skylineBefore.Skyline) {
		t.Fatalf("skyline rows diverge:\n got %v\nwant %v", skylineAfter.Skyline, skylineBefore.Skyline)
	}

	// And the recovered table keeps accepting batches at the next
	// version.
	var resp serve.BatchResponse
	postJSON(t, base+"/tables/flights/rows:batch",
		serve.BatchRequest{Add: []serve.RowSpec{{TO: []int64{1, 1}, PO: []string{"a"}}}}, &resp)
	if resp.Version != want.Version+1 {
		t.Fatalf("post-restart batch version %d, want %d", resp.Version, want.Version+1)
	}
}

func startServer(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir, "-checkpoint-every", "2048")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for readiness.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("server never became healthy")
	return nil
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
