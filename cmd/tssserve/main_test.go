package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

func TestTableFlags(t *testing.T) {
	var f tableFlags
	if err := f.Set("a=dir1"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("b=dir2"); err != nil {
		t.Fatal(err)
	}
	if f.String() != "a=dir1,b=dir2" {
		t.Fatalf("String() = %q", f.String())
	}
}

// TestPprofMux pins the -pprof side listener's routes: the index and
// the named profiles answer, and the serving API never leaks onto the
// profiling listener.
func TestPprofMux(t *testing.T) {
	ts := httptest.NewServer(pprofMux())
	defer ts.Close()

	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		if path == "/debug/pprof/" && !strings.Contains(string(body), "goroutine") {
			t.Errorf("pprof index does not list the goroutine profile")
		}
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /statsz on the pprof listener: status %d, want 404", resp.StatusCode)
	}
}

// TestPreloadAndServe exercises the binary's startup path (CSV preload
// into a catalog, handler wiring) without binding a real port.
func TestPreloadAndServe(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "data.csv"),
		[]byte("to_0,po_0\n3,0\n1,1\n2,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dag_0.txt"),
		[]byte("3\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := serve.New(4)
	info, err := s.LoadCSVDir("gen", dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 3 {
		t.Fatalf("rows = %d", info.Rows)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/healthz", "/statsz", "/tables", "/tables/gen", "/tables/gen/skyline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: HTTP %d", path, resp.StatusCode)
		}
	}
}
