package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestClusterIntegration is the end-to-end multi-process test behind
// the CI cluster job: real tssserve binaries — two shard nodes, one
// coordinator, one single-node reference — a generated table loaded
// through the coordinator, and scatter/gather results asserted equal
// to the single node for all four query variants, before and after a
// batch mutation routed through the coordinator.
func TestClusterIntegration(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("process signalling differs on windows")
	}
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "tssserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	start := func(args ...string) (*exec.Cmd, string) {
		t.Helper()
		addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
		cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Signal(syscall.SIGTERM)
			cmd.Wait()
		})
		waitHealthy(t, "http://"+addr)
		return cmd, "http://" + addr
	}

	_, shard0 := start("-shard-of", "0/2")
	_, shard1 := start("-shard-of", "1/2")
	_, coord := start("-coordinator", shard0+","+shard1)
	_, single := start()

	// A generated mixed TO/PO table, loaded through the coordinator
	// (hash-partitioned) and verbatim into the single node.
	rng := rand.New(rand.NewSource(42))
	spec := serve.TableSpec{
		Name:      "it",
		TOColumns: []string{"x", "y"},
		Orders: []serve.OrderSpec{{
			Name:   "cls",
			Values: []string{"a", "b", "c", "d"},
			Edges:  [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}},
		}},
	}
	for i := 0; i < 150; i++ {
		spec.Rows = append(spec.Rows, serve.RowSpec{
			TO: []int64{int64(rng.Intn(500)), int64(rng.Intn(500))},
			PO: []string{spec.Orders[0].Values[rng.Intn(4)]},
		})
	}
	postJSON(t, coord+"/tables", spec, nil)
	postJSON(t, single+"/tables", spec, nil)

	le := int64(200)
	variants := []struct {
		name string
		req  serve.QueryRequest
	}{
		{"full", serve.QueryRequest{Explain: true}},
		{"subspace", serve.QueryRequest{Subspace: []string{"x", "cls"}}},
		{"constrained", serve.QueryRequest{Where: []serve.WhereSpec{{Col: "x", Le: &le}}}},
		{"topk", serve.QueryRequest{TopK: 5, Rank: "ideal", Ideal: []int64{250, 250}}},
	}
	sweep := func(phase string) {
		t.Helper()
		for _, v := range variants {
			var c, s serve.QueryResponse
			postJSON(t, coord+"/tables/it/query", v.req, &c)
			postJSON(t, single+"/tables/it/query", v.req, &s)
			if c.Count != s.Count {
				t.Fatalf("%s/%s: coordinator count %d, single %d", phase, v.name, c.Count, s.Count)
			}
			ck, sk := valueKeys(c.Skyline), valueKeys(s.Skyline)
			for i := range ck {
				if ck[i] != sk[i] {
					t.Fatalf("%s/%s: results diverge:\n coord:  %v\n single: %v", phase, v.name, ck, sk)
				}
			}
			if c.Cluster == nil || c.Cluster.Shards != 2 || len(c.Cluster.Versions) != 2 {
				t.Fatalf("%s/%s: missing/short cluster metadata: %+v", phase, v.name, c.Cluster)
			}
		}
	}
	sweep("initial")

	// Mutation through the coordinator: remove two skyline rows by
	// shard handle, add two fresh rows; mirror on the single node by
	// matching values.
	var full serve.QueryResponse
	postJSON(t, coord+"/tables/it/query", serve.QueryRequest{Algo: "stss"}, &full)
	if len(full.Skyline) < 2 {
		t.Fatalf("skyline too small to mutate: %d", len(full.Skyline))
	}
	batch := serve.BatchRequest{Add: []serve.RowSpec{
		{TO: []int64{1, 499}, PO: []string{"d"}},
		{TO: []int64{499, 1}, PO: []string{"a"}},
	}}
	removedKeys := map[string]int{}
	for _, r := range full.Skyline[:2] {
		batch.RemoveSharded = append(batch.RemoveSharded, serve.ShardRef{Shard: *r.Shard, Row: r.Row})
		removedKeys[fmt.Sprintf("%v|%v", r.TO, r.PO)]++
	}
	var bresp serve.BatchResponse
	postJSON(t, coord+"/tables/it/rows:batch", batch, &bresp)
	if len(bresp.Versions) != 2 || bresp.Removed != 2 || bresp.Added != 2 {
		t.Fatalf("coordinator batch response %+v", bresp)
	}

	// Single node: find the same rows by value and remove by index.
	next := spec
	next.Rows = nil
	for _, r := range spec.Rows {
		k := fmt.Sprintf("%v|%v", r.TO, r.PO)
		if removedKeys[k] > 0 {
			removedKeys[k]--
			continue
		}
		next.Rows = append(next.Rows, r)
	}
	next.Rows = append(next.Rows, batch.Add...)
	deleteTable(t, single+"/tables/it")
	postJSON(t, single+"/tables", next, nil)

	sweep("post-batch")
}

// waitHealthy blocks until the server's /healthz answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server %s never became healthy", base)
}

func deleteTable(t *testing.T, url string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("DELETE %s: HTTP %d", url, resp.StatusCode)
	}
}

func valueKeys(rows []serve.SkylineRow) []string {
	keys := make([]string, len(rows))
	for i := range rows {
		keys[i] = fmt.Sprintf("%v|%v", rows[i].TO, rows[i].PO)
	}
	sort.Strings(keys)
	return keys
}
