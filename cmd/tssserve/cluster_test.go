package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestClusterIntegration is the end-to-end multi-process test behind
// the CI cluster job: real tssserve binaries — two shard nodes, one
// coordinator, one single-node reference — a generated table loaded
// through the coordinator, and scatter/gather results asserted equal
// to the single node for all four query variants, before and after a
// batch mutation routed through the coordinator.
func TestClusterIntegration(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("process signalling differs on windows")
	}
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "tssserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	start := func(args ...string) (*exec.Cmd, string) {
		t.Helper()
		addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
		cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Signal(syscall.SIGTERM)
			cmd.Wait()
		})
		waitHealthy(t, "http://"+addr)
		return cmd, "http://" + addr
	}

	_, shard0 := start("-shard-of", "0/2")
	_, shard1 := start("-shard-of", "1/2")
	_, coord := start("-coordinator", shard0+","+shard1)
	_, single := start()

	// A generated mixed TO/PO table, loaded through the coordinator
	// (hash-partitioned) and verbatim into the single node.
	rng := rand.New(rand.NewSource(42))
	spec := serve.TableSpec{
		Name:      "it",
		TOColumns: []string{"x", "y"},
		Orders: []serve.OrderSpec{{
			Name:   "cls",
			Values: []string{"a", "b", "c", "d"},
			Edges:  [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}},
		}},
	}
	for i := 0; i < 150; i++ {
		spec.Rows = append(spec.Rows, serve.RowSpec{
			TO: []int64{int64(rng.Intn(500)), int64(rng.Intn(500))},
			PO: []string{spec.Orders[0].Values[rng.Intn(4)]},
		})
	}
	postJSON(t, coord+"/tables", spec, nil)
	postJSON(t, single+"/tables", spec, nil)

	le := int64(200)
	variants := []struct {
		name string
		req  serve.QueryRequest
	}{
		{"full", serve.QueryRequest{Explain: true}},
		{"subspace", serve.QueryRequest{Subspace: []string{"x", "cls"}}},
		{"constrained", serve.QueryRequest{Where: []serve.WhereSpec{{Col: "x", Le: &le}}}},
		{"topk", serve.QueryRequest{TopK: 5, Rank: "ideal", Ideal: []int64{250, 250}}},
	}
	sweep := func(phase string) {
		t.Helper()
		for _, v := range variants {
			var c, s serve.QueryResponse
			postJSON(t, coord+"/tables/it/query", v.req, &c)
			postJSON(t, single+"/tables/it/query", v.req, &s)
			if c.Count != s.Count {
				t.Fatalf("%s/%s: coordinator count %d, single %d", phase, v.name, c.Count, s.Count)
			}
			ck, sk := valueKeys(c.Skyline), valueKeys(s.Skyline)
			for i := range ck {
				if ck[i] != sk[i] {
					t.Fatalf("%s/%s: results diverge:\n coord:  %v\n single: %v", phase, v.name, ck, sk)
				}
			}
			if c.Cluster == nil || c.Cluster.Shards != 2 || len(c.Cluster.Versions) != 2 {
				t.Fatalf("%s/%s: missing/short cluster metadata: %+v", phase, v.name, c.Cluster)
			}
		}
	}
	sweep("initial")

	// Mutation through the coordinator: remove two skyline rows by
	// shard handle, add two fresh rows; mirror on the single node by
	// matching values.
	var full serve.QueryResponse
	postJSON(t, coord+"/tables/it/query", serve.QueryRequest{Algo: "stss"}, &full)
	if len(full.Skyline) < 2 {
		t.Fatalf("skyline too small to mutate: %d", len(full.Skyline))
	}
	batch := serve.BatchRequest{Add: []serve.RowSpec{
		{TO: []int64{1, 499}, PO: []string{"d"}},
		{TO: []int64{499, 1}, PO: []string{"a"}},
	}}
	removedKeys := map[string]int{}
	for _, r := range full.Skyline[:2] {
		batch.RemoveSharded = append(batch.RemoveSharded, serve.ShardRef{Shard: *r.Shard, Row: r.Row})
		removedKeys[fmt.Sprintf("%v|%v", r.TO, r.PO)]++
	}
	var bresp serve.BatchResponse
	postJSON(t, coord+"/tables/it/rows:batch", batch, &bresp)
	if len(bresp.Versions) != 2 || bresp.Removed != 2 || bresp.Added != 2 {
		t.Fatalf("coordinator batch response %+v", bresp)
	}

	// Single node: find the same rows by value and remove by index.
	next := spec
	next.Rows = nil
	for _, r := range spec.Rows {
		k := fmt.Sprintf("%v|%v", r.TO, r.PO)
		if removedKeys[k] > 0 {
			removedKeys[k]--
			continue
		}
		next.Rows = append(next.Rows, r)
	}
	next.Rows = append(next.Rows, batch.Add...)
	deleteTable(t, single+"/tables/it")
	postJSON(t, single+"/tables", next, nil)

	sweep("post-batch")
}

// waitHealthy blocks until the server's /healthz answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server %s never became healthy", base)
}

func deleteTable(t *testing.T, url string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("DELETE %s: HTTP %d", url, resp.StatusCode)
	}
}

func valueKeys(rows []serve.SkylineRow) []string {
	keys := make([]string, len(rows))
	for i := range rows {
		keys[i] = fmt.Sprintf("%v|%v", rows[i].TO, rows[i].PO)
	}
	sort.Strings(keys)
	return keys
}

// TestClusterIntegrationSlowShard is the progressive-delivery half of
// the cluster job: a 2-shard range-partitioned cluster where one shard
// answers queries through a delaying proxy. The streamed merge must
// certify and deliver the fast shard's rows — whose TO values the slow
// shard's statistics min-corner provably cannot dominate — before the
// slow shard responds at all, and the trailer must still carry the
// complete 2-entry version vector.
func TestClusterIntegrationSlowShard(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("process signalling differs on windows")
	}
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "tssserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	start := func(args ...string) string {
		t.Helper()
		addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
		cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Signal(syscall.SIGTERM)
			cmd.Wait()
		})
		waitHealthy(t, "http://"+addr)
		return "http://" + addr
	}

	shard0 := start("-shard-of", "0/2")
	shard1 := start("-shard-of", "1/2")

	// The proxy delays only query/skyline traffic to shard 1; table
	// management and statistics pass straight through, so the slowness
	// hits exactly the scatter leg. forwarded records when the delayed
	// response actually left for the coordinator.
	const delay = 1500 * time.Millisecond
	var forwarded atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slow := strings.HasSuffix(r.URL.Path, "/query") || strings.HasSuffix(r.URL.Path, "/skyline")
		if slow {
			time.Sleep(delay)
			forwarded.Store(time.Now().UnixNano())
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, shard1+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
			}
			if err != nil {
				return
			}
		}
	}))
	t.Cleanup(proxy.Close)

	// Range-partitioned creates need a durable coordinator catalog.
	coord := start("-coordinator", shard0+","+proxy.URL, "-data-dir", filepath.Join(t.TempDir(), "co"))

	// Anti-correlated rows (x+y constant: every row is in the skyline),
	// range-partitioned on x at 500: shard 0 serves x < 500 and shard
	// 1's statistics min-corner has x ≥ 500, so no shard-0 row can ever
	// be dominated by an unseen shard-1 row — each one certifies the
	// moment shard 0 streams it.
	spec := serve.TableSpec{
		Name:      "slow",
		TOColumns: []string{"x", "y"},
		Partition: &serve.PartitionSpec{By: "range", Column: "x", Bounds: []int64{500}},
	}
	for i := 0; i < 200; i++ {
		x := int64(i * 5)
		spec.Rows = append(spec.Rows, serve.RowSpec{TO: []int64{x, 1000 - x}})
	}
	postJSON(t, coord+"/tables", spec, nil)

	// One add per shard bumps both shard versions past zero, so the
	// trailer's version-vector completeness check below has teeth (a
	// never-mutated table reports version 0 everywhere).
	batch := serve.BatchRequest{Add: []serve.RowSpec{
		{TO: []int64{3, 997}}, {TO: []int64{997, 3}},
	}}
	postJSON(t, coord+"/tables/slow/rows:batch", batch, nil)

	var info serve.TableInfo
	getJSON(t, coord+"/tables/slow", &info)
	if info.Version == 0 {
		t.Fatal("batch did not advance the cluster version")
	}

	const k = 5
	t0 := time.Now()
	resp, err := http.Get(coord + "/tables/slow/skyline?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed skyline: HTTP %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var kthAt time.Duration
	rows, trailerSeen := 0, false
	var trailer serve.StreamRecord
	for {
		var rec serve.StreamRecord
		if err := dec.Decode(&rec); err != nil {
			break
		}
		switch rec.Type {
		case "row":
			rows++
			if rows == k {
				kthAt = time.Since(t0)
				if forwarded.Load() != 0 {
					t.Fatalf("slow shard had already responded when row %d arrived (%.0fms)", k, kthAt.Seconds()*1000)
				}
			}
			if rec.Row == nil || rec.Row.Shard == nil {
				t.Fatalf("row %d missing payload or shard annotation", rows)
			}
			if rows <= k && *rec.Row.Shard != 0 {
				t.Fatalf("early row %d came from shard %d, want the fast shard", rows, *rec.Row.Shard)
			}
		case "error":
			t.Fatalf("stream error: %s", rec.Error)
		case "trailer":
			trailerSeen = true
			trailer = rec
		}
	}
	if !trailerSeen {
		t.Fatal("stream ended without a trailer")
	}
	if rows != 202 || trailer.Count != 202 {
		t.Fatalf("streamed %d rows, trailer count %d, want 202", rows, trailer.Count)
	}
	if kthAt >= delay {
		t.Fatalf("row %d arrived after %.0fms — no earlier than the slow shard's response", k, kthAt.Seconds()*1000)
	}
	if forwarded.Load() == 0 {
		t.Fatal("proxy never forwarded the slow leg — the stream cannot have exercised the merge")
	}
	if trailer.Cluster == nil || trailer.Cluster.Shards != 2 || len(trailer.Cluster.Versions) != 2 {
		t.Fatalf("trailer cluster metadata %+v, want a complete 2-shard version vector", trailer.Cluster)
	}
	var sum int64
	for _, v := range trailer.Cluster.Versions {
		if v == 0 {
			t.Fatalf("trailer version vector %v has an empty entry", trailer.Cluster.Versions)
		}
		sum += v
	}
	if sum != info.Version {
		t.Fatalf("trailer version vector sums to %d, table info says %d", sum, info.Version)
	}
}
