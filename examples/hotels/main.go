// Hotels: a static skyline over a set-valued attribute — one of the
// partially ordered domains the paper's introduction motivates. Each
// hotel has a price and a distance to the beach (both minimised) and a
// set of amenities. A hotel's amenity set is preferred to another's iff
// it is a strict superset: the 2^5 subsets of five amenities form a
// containment-lattice DAG, exactly the domain family the paper's
// evaluation generates.
//
// The skyline answers: "which hotels are worth considering no matter
// how a guest weighs money, walking and amenities?"
package main

import (
	"fmt"
	"math/rand"
	"strings"

	tss "repro"
)

var amenities = []string{"wifi", "pool", "gym", "spa", "parking"}

// setLabel renders an amenity bitmask as a stable label.
func setLabel(mask int) string {
	if mask == 0 {
		return "{}"
	}
	var parts []string
	for b, name := range amenities {
		if mask&(1<<b) != 0 {
			parts = append(parts, name)
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func main() {
	// Build the containment order: supersets are preferred, so an edge
	// runs from S∪{x} down to S for every amenity x ∉ S.
	n := 1 << len(amenities)
	labels := make([]string, n)
	for mask := 0; mask < n; mask++ {
		labels[mask] = setLabel(mask)
	}
	order := tss.NewOrder(labels...)
	for mask := 0; mask < n; mask++ {
		for b := range amenities {
			if mask&(1<<b) == 0 {
				order.Prefer(setLabel(mask|1<<b), setLabel(mask))
			}
		}
	}

	// 2000 synthetic hotels: anti-correlated price vs distance (cheap
	// hotels are far from the beach), random amenity sets.
	rng := rand.New(rand.NewSource(42))
	table := tss.NewTable([]string{"price", "distance"}, order)
	for i := 0; i < 2000; i++ {
		base := rng.Intn(300)
		price := int64(100 + base + rng.Intn(80))
		distance := int64(400 - base + rng.Intn(80))
		mask := rng.Intn(n)
		table.MustAdd([]int64{price, distance}, setLabel(mask))
	}

	res := table.SkylineResult(tss.MethodSTSS)
	fmt.Printf("%d hotels, %d in the skyline\n\n", table.Len(), len(res.Rows))

	fmt.Println("First ten skyline hotels (in discovery order):")
	for i, row := range res.Rows {
		if i == 10 {
			break
		}
		fmt.Printf("  %s\n", table.Row(row))
	}

	// The amenity order is why the skyline is larger than a plain
	// price/distance skyline: an expensive far hotel survives if it
	// offers an amenity set nobody else covers. Rebuild the same TO
	// data without the PO column for comparison.
	plain := tss.NewTable([]string{"price", "distance"})
	rng = rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		base := rng.Intn(300)
		price := int64(100 + base + rng.Intn(80))
		distance := int64(400 - base + rng.Intn(80))
		rng.Intn(n) // keep the stream aligned
		plain.MustAdd([]int64{price, distance})
	}
	plainRes := plain.SkylineResult(tss.MethodSTSS)
	fmt.Printf("\nWithout the amenity attribute the skyline shrinks to %d hotels.\n", len(plainRes.Rows))

	fmt.Printf("\nsTSS cost: %d page reads, %d dominance checks, %.3fs total (5ms/IO)\n",
		res.Stats.PageReads, res.Stats.DomChecks, res.Stats.TotalSeconds())
	sdc := table.SkylineResult(tss.MethodSDCPlus)
	fmt.Printf("SDC+ cost: %d page reads, %d dominance checks, %.3fs total\n",
		sdc.Stats.PageReads, sdc.Stats.DomChecks, sdc.Stats.TotalSeconds())
}
