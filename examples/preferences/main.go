// Preferences: dynamic skyline queries (the paper's dTSS, §V). A laptop
// catalog is prepared once; every shopper then brings their own brand
// preferences — a fresh partial order per query — and gets their
// personal skyline without any index rebuild. The rebuild-everything
// baseline (the paper's dynamic SDC+ adaptation) answers the same
// queries for comparison, paying an external sort and bulk load each
// time.
package main

import (
	"fmt"
	"math/rand"

	tss "repro"
)

var brands = []string{"apex", "bolt", "core", "dyna", "echo", "flux"}

func brandOrder(prefs ...[2]string) *tss.Order {
	o := tss.NewOrder(brands...)
	for _, p := range prefs {
		o.Prefer(p[0], p[1])
	}
	return o
}

func main() {
	// Catalog: 5000 laptops with anti-correlated price vs weight (light
	// laptops cost more) and a uniformly random brand.
	rng := rand.New(rand.NewSource(7))
	catalog := tss.NewTable([]string{"price", "weight_g"}, brandOrder())
	for i := 0; i < 5000; i++ {
		base := rng.Intn(1500)
		price := int64(500 + base + rng.Intn(200))
		weight := int64(2800 - base + rng.Intn(200))
		catalog.MustAdd([]int64{price, weight}, brands[rng.Intn(len(brands))])
	}

	dyn := catalog.PrepareDynamic()
	fmt.Printf("catalog: %d laptops, %d brand groups prepared once\n\n",
		catalog.Len(), dyn.Groups())

	shoppers := []struct {
		name  string
		prefs [][2]string
	}{
		{"brand-loyal", [][2]string{
			{"apex", "bolt"}, {"apex", "core"}, {"apex", "dyna"}, {"apex", "echo"}, {"apex", "flux"},
		}},
		{"two-tier", [][2]string{
			{"apex", "dyna"}, {"bolt", "dyna"}, {"core", "dyna"},
			{"apex", "echo"}, {"bolt", "echo"}, {"core", "echo"},
			{"apex", "flux"}, {"bolt", "flux"}, {"core", "flux"},
		}},
		{"indifferent", nil},
		{"contrarian", [][2]string{
			{"flux", "apex"}, {"echo", "apex"}, {"dyna", "apex"},
		}},
	}

	for _, s := range shoppers {
		q := brandOrder(s.prefs...)
		res, err := dyn.Query(q)
		if err != nil {
			panic(err)
		}
		qb := brandOrder(s.prefs...)
		base, err := dyn.QueryBaseline(qb)
		if err != nil {
			panic(err)
		}
		if len(base.Rows) != len(res.Rows) {
			panic("methods disagree")
		}
		speedup := base.Stats.TotalSeconds() / res.Stats.TotalSeconds()
		fmt.Printf("shopper %-12s skyline=%4d   dTSS %6.3fs (%4d IOs)   rebuild-SDC+ %7.3fs (%5d IOs)   %5.1fx faster\n",
			s.name, len(res.Rows), res.Stats.TotalSeconds(),
			res.Stats.PageReads+res.Stats.PageWrites,
			base.Stats.TotalSeconds(),
			base.Stats.PageReads+base.Stats.PageWrites, speedup)

		for i, row := range res.Rows {
			if i == 3 {
				fmt.Printf("    ...\n")
				break
			}
			fmt.Printf("    %s\n", catalog.Row(row))
		}
	}
}
