// Progressive: reproduces the shape of the paper's Figure 11 on a small
// synthetic workload. sTSS is optimally progressive — every skyline
// point is output the moment it is examined — while SDC+ can only
// release a stratum's points once the whole stratum is exhausted, so
// its results arrive in a few large bursts. The table below shows the
// virtual time (CPU + 5 ms per page IO) at which each decile of the
// skyline became available.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	tss "repro"
)

func main() {
	// A two-level category hierarchy as the PO attribute: 3 families,
	// 12 models, family preferred to its models; plus two
	// anti-correlated TO attributes.
	var labels []string
	for f := 0; f < 3; f++ {
		labels = append(labels, fmt.Sprintf("family%d", f))
	}
	for m := 0; m < 12; m++ {
		labels = append(labels, fmt.Sprintf("model%d", m))
	}
	order := tss.NewOrder(labels...)
	for m := 0; m < 12; m++ {
		order.Prefer(fmt.Sprintf("family%d", m%3), fmt.Sprintf("model%d", m))
	}
	// Extra cross links make some models partially covered, which is
	// what forces SDC+ into multiple strata.
	order.Prefer("model0", "model3")
	order.Prefer("model1", "model4")

	rng := rand.New(rand.NewSource(99))
	table := tss.NewTable([]string{"x", "y"}, order)
	for i := 0; i < 8000; i++ {
		base := rng.Intn(900)
		table.MustAdd(
			[]int64{int64(50 + base + rng.Intn(100)), int64(1000 - base + rng.Intn(100))},
			labels[rng.Intn(len(labels))],
		)
	}

	stss := table.SkylineResult(tss.MethodSTSS)
	sdc := table.SkylineResult(tss.MethodSDCPlus)
	fmt.Printf("skyline size: %d (both methods agree: %v)\n\n",
		len(stss.Rows), len(stss.Rows) == len(sdc.Rows))

	fmt.Println("virtual seconds until x% of the skyline is available:")
	fmt.Println("  %   sTSS     SDC+")
	for pct := 10; pct <= 100; pct += 10 {
		fmt.Printf("%4d  %7.3f  %7.3f\n", pct, decile(stss, pct), decile(sdc, pct))
	}

	fmt.Println()
	fmt.Println("emission profile (each column is 2% of the run; '#' marks arrivals):")
	fmt.Printf("  sTSS  %s\n", sparkline(stss))
	fmt.Printf("  SDC+  %s\n", sparkline(sdc))
}

func decile(r *tss.SkylineResult, pct int) float64 {
	n := len(r.EmissionSeconds)
	if n == 0 {
		return 0
	}
	k := (n*pct + 99) / 100
	if k < 1 {
		k = 1
	}
	return r.EmissionSeconds[k-1]
}

// sparkline buckets emissions into 50 time slots across the run.
func sparkline(r *tss.SkylineResult) string {
	if len(r.EmissionSeconds) == 0 {
		return ""
	}
	end := r.Stats.TotalSeconds()
	if end == 0 {
		end = 1
	}
	buckets := make([]int, 50)
	for _, t := range r.EmissionSeconds {
		b := int(t / end * 49.999)
		if b > 49 {
			b = 49
		}
		buckets[b]++
	}
	var sb strings.Builder
	for _, c := range buckets {
		if c == 0 {
			sb.WriteByte('.')
		} else {
			sb.WriteByte('#')
		}
	}
	return sb.String()
}
