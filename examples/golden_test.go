// Package examples holds golden-output tests for the example programs:
// each is built and run via `go run` and its output compared against a
// checked-in golden file. Measured quantities that legitimately vary
// between runs — wall-clock-derived decimals and emission sparklines —
// are normalised away before comparison; the simulated cost model
// (page IOs, dominance checks) and all skyline contents are
// deterministic and compared exactly.
//
// Regenerate after an intentional output change with
//
//	go test ./examples -run Golden -update
package examples

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

var programs = []string{"quickstart", "hotels", "preferences", "progressive", "topk"}

var (
	// Decimal numbers embed measured CPU seconds (e.g. "0.125s",
	// "12.3x faster", decile tables); integers (IO counts, skyline
	// sizes, row values) are deterministic and preserved.
	floatRE = regexp.MustCompile(`\d+\.\d+`)
	// Emission sparklines bucket by virtual time, whose CPU component
	// jitters; keep only their length class.
	sparkRE = regexp.MustCompile(`[.#]{20,}`)
)

func normalize(out []byte) []byte {
	out = floatRE.ReplaceAll(out, []byte("#.###"))
	out = sparkRE.ReplaceAll(out, []byte("<sparkline>"))
	return out
}

func TestExamplesGolden(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	for _, name := range programs {
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(goBin, "run", "repro/examples/"+name)
			cmd.Dir = ".." // module root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("run %s: %v\n%s", name, err, out)
			}
			got := normalize(out)
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("%s output diverged from %s\n--- got ---\n%s\n--- want ---\n%s",
					name, golden, got, want)
			}
		})
	}
}
