// Quickstart: the paper's flight-reservation example (Figure 1 and
// Table I). Ten tickets with two totally ordered attributes (price,
// stops) and one partially ordered attribute (airline). Two different
// airline preference orders produce two different skylines; the same
// data also answers dynamic queries without rebuilding anything.
package main

import (
	"fmt"

	tss "repro"
)

func main() {
	// The ticket table from Figure 1(a). Airlines: a, b, c, d.
	airline := tss.NewOrder("a", "b", "c", "d").
		Prefer("a", "b"). // the user favours a over b ...
		Prefer("a", "c"). // ... and over c,
		Prefer("b", "d"). // and any airline over d;
		Prefer("c", "d")  // b and c stay incomparable.

	table := tss.NewTable([]string{"price", "stops"}, airline)
	tickets := []struct {
		price, stops int64
		airline      string
	}{
		{1800, 0, "a"}, {2000, 0, "a"}, {1800, 0, "b"}, {1200, 1, "b"}, {1400, 1, "a"},
		{1000, 1, "b"}, {1000, 1, "d"}, {1800, 1, "c"}, {500, 2, "d"}, {1200, 2, "c"},
	}
	for _, tk := range tickets {
		table.MustAdd([]int64{tk.price, tk.stops}, tk.airline)
	}

	fmt.Println("Skyline under the first partial order (a over b,c; all over d):")
	for _, row := range table.Skyline() {
		fmt.Printf("  p%-2d %s\n", row+1, table.Row(row))
	}
	fmt.Println("  (paper Table I: p1, p5, p6, p9, p10)")
	fmt.Println()

	// A second user has opposite tastes: only b is preferred to a.
	// Dynamic queries reuse the prepared structures; only the tiny
	// preference DAG is preprocessed per query.
	dyn := table.PrepareDynamic()
	q := tss.NewOrder("a", "b", "c", "d").Prefer("b", "a")
	res, err := dyn.Query(q)
	if err != nil {
		panic(err)
	}
	fmt.Println("Dynamic skyline under the second partial order (only b over a):")
	for _, row := range res.Rows {
		fmt.Printf("  p%-2d %s\n", row+1, table.Row(row))
	}
	fmt.Println("  (paper Table I: p3, p6, p7, p8, p9, p10)")
	fmt.Println()

	// Algorithms agree; costs differ.
	for _, m := range []tss.Method{tss.MethodSTSS, tss.MethodSDCPlus, tss.MethodBBSPlus, tss.MethodBNL} {
		r := table.SkylineResult(m)
		fmt.Printf("%-5v skyline=%d  reads=%d  checks=%d  total=%.3fs\n",
			m, len(r.Rows), r.Stats.PageReads, r.Stats.DomChecks, r.Stats.TotalSeconds())
	}
}
