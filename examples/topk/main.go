// Topk: pay-as-you-go skyline consumption. Because sTSS is optimally
// progressive (precedence + exactness), a consumer that only wants the
// first few skyline results pays only the traversal needed to certify
// them — the rest of the index is never touched. This example asks for
// the first 5 skyline restaurants out of 50 000 and compares the work
// done against a full enumeration.
package main

import (
	"fmt"
	"math/rand"

	tss "repro"
)

var cuisines = []string{"thai", "italian", "mexican", "sushi", "bistro", "diner", "ramen", "tapas"}

func main() {
	// A diner prefers some cuisines: sushi and ramen over diner food,
	// everything over fast "bistro" (say). Unrelated cuisines stay
	// incomparable, which is exactly what a partial order expresses.
	pref := tss.NewOrder(cuisines...).
		Prefer("sushi", "diner").
		Prefer("ramen", "diner").
		Prefer("thai", "bistro").
		Prefer("sushi", "bistro").
		Prefer("italian", "bistro")

	table := tss.NewTable([]string{"price", "wait_min"}, pref)
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 50_000; i++ {
		base := rng.Intn(80)
		price := int64(10 + base + rng.Intn(20))
		wait := int64(95 - base + rng.Intn(20))
		table.MustAdd([]int64{price, wait}, cuisines[rng.Intn(len(cuisines))])
	}

	fmt.Println("first 5 skyline restaurants (streamed):")
	got := 0
	table.EachSkyline(func(row int) bool {
		fmt.Printf("  %s\n", table.Row(row))
		got++
		return got < 5
	})

	full := table.SkylineResult(tss.MethodSTSS)
	fmt.Printf("\nfull skyline: %d restaurants, %d page reads, %d dominance checks\n",
		len(full.Rows), full.Stats.PageReads, full.Stats.DomChecks)
	fmt.Println("the streamed prefix above stopped after certifying 5 —")
	fmt.Println("its cost is a fraction of the full run (see TestCursorTopKCostsLess).")
}
