package tss

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/poset"
)

// Dynamic is a table prepared for dynamic skyline queries (the paper's
// dTSS, §V): rows are grouped by their PO value combination with one
// small R-tree per group, built once. Each query supplies fresh
// preference DAGs over the same value sets; only the DAG preprocessing
// (topological sort, spanning tree, interval propagation) happens per
// query — no index is rebuilt and no coordinate is recomputed.
type Dynamic struct {
	table    *Table
	db       *core.DynamicDB
	cacheCap int
}

// PrepareDynamic freezes the table's current rows into a dynamic-query
// database. The table's own Orders become irrelevant for querying; only
// their value sets matter.
func (t *Table) PrepareDynamic() *Dynamic {
	return &Dynamic{table: t, db: core.NewDynamicDB(t.ds, core.Options{})}
}

// Table returns the table this database was prepared from.
func (d *Dynamic) Table() *Table { return d.table }

// Reprepare rebuilds the dynamic-query database from the table's
// current rows, carrying over the cache configuration (with a fresh,
// empty cache — cached skylines are stale once rows changed). This is
// the re-prepare hook behind batched mutations: clone the table, apply
// the batch, Reprepare, atomically publish the pair; in-flight queries
// keep using the old database, which is never mutated.
func (d *Dynamic) Reprepare(t *Table) *Dynamic {
	if t == nil {
		t = d.table
	}
	nd := t.PrepareDynamic()
	if d.cacheCap > 0 {
		nd.EnableCache(d.cacheCap)
	}
	return nd
}

// ApplyDelta derives a prepared Dynamic for next — a table produced by
// Table.ApplyBatch on this database's table — by incremental index
// maintenance: only the point groups the batch touched have their
// R-trees (copy-on-write) and local skylines updated, in
// O(batch·log N) plus one O(N) row-mapping pass, instead of the full
// re-partition, re-sort and bulk-load Reprepare performs. The receiver
// keeps serving queries untouched; the cache configuration carries
// over with a fresh cache (cached skylines are stale once rows
// changed).
//
// On any inconsistency between delta and the prepared state — or when
// accumulated churn calls for compaction — ApplyDelta transparently
// falls back to a full Reprepare, so the result is always equivalent.
func (d *Dynamic) ApplyDelta(next *Table, delta *BatchDelta) *Dynamic {
	if next == nil || delta == nil {
		return d.Reprepare(next)
	}
	db, err := d.db.ApplyBatch(next.ds, &core.Delta{OldToNew: delta.OldToNew, Added: delta.Added})
	if err != nil {
		return d.Reprepare(next)
	}
	nd := &Dynamic{table: next, db: db}
	if d.cacheCap > 0 {
		nd.EnableCache(d.cacheCap)
	}
	return nd
}

// Groups returns the number of distinct PO value combinations.
func (d *Dynamic) Groups() int { return d.db.NumGroups() }

// EnableCache memoises up to capacity past query results, keyed by the
// canonical form of the query's preference orders: repeating a query
// (however its Orders were re-built) is served without touching any
// index (§V-B). Enable before sharing the Dynamic across goroutines;
// queries through an enabled cache are concurrency-safe.
func (d *Dynamic) EnableCache(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	d.cacheCap = capacity
	d.db.EnableCache(capacity)
}

// CacheStats returns (hits, misses) since EnableCache.
func (d *Dynamic) CacheStats() (hits, misses int64) { return d.db.CacheStats() }

// Query computes the dynamic skyline under the given preference orders
// (one per PO column; each must use exactly the same value labels as
// the column's original Order). The orders may be freshly built per
// query — compiling them is the only per-query preprocessing needed.
func (d *Dynamic) Query(orders ...*Order) (*SkylineResult, error) {
	return d.QueryContext(context.Background(), orders...)
}

// QueryContext is Query with cooperative cancellation: ctx is checked
// between point groups and periodically inside each group's index
// traversal, so a server-side request timeout cancels a long dynamic
// run mid-flight instead of only refusing to start it. A canceled query
// returns an error wrapping the context's and stores nothing in the
// result cache.
func (d *Dynamic) QueryContext(ctx context.Context, orders ...*Order) (*SkylineResult, error) {
	domains, err := d.compileQueryOrders(orders)
	if err != nil {
		return nil, err
	}
	res, err := d.db.QueryTSSContext(ctx, domains, core.Options{UseMemTree: true})
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// QueryAt computes the *fully dynamic* skyline (§V-B): besides the
// preference orders, the query names the ideal TO values ideal (one per
// TO column); every TO comparison becomes a distance |value − ideal|,
// so "best" means closest to the ideal rather than smallest. Row
// grouping and per-group indexes are still reused; only the precomputed
// local skylines are unusable for this query class.
func (d *Dynamic) QueryAt(ideal []int64, orders ...*Order) (*SkylineResult, error) {
	return d.QueryAtContext(context.Background(), ideal, orders...)
}

// QueryAtContext is QueryAt with cooperative cancellation (the same
// contract as QueryContext).
func (d *Dynamic) QueryAtContext(ctx context.Context, ideal []int64, orders ...*Order) (*SkylineResult, error) {
	domains, err := d.compileQueryOrders(orders)
	if err != nil {
		return nil, err
	}
	if len(ideal) != len(d.table.toNames) {
		return nil, fmt.Errorf("tss: ideal point has %d values, table has %d TO columns",
			len(ideal), len(d.table.toNames))
	}
	q := make([]int32, len(ideal))
	for i, v := range ideal {
		if v < 0 || v > 1<<30 {
			return nil, fmt.Errorf("tss: ideal value %d out of supported range [0, 2^30]", v)
		}
		q[i] = int32(v)
	}
	res, err := d.db.QueryTSSFullContext(ctx, q, domains, core.Options{UseMemTree: true})
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// QueryBaseline answers the same query with the rebuild-everything
// SDC+ adaptation — the baseline dTSS is evaluated against. Exposed so
// applications (and the examples) can reproduce the paper's dynamic
// comparison on their own data.
func (d *Dynamic) QueryBaseline(orders ...*Order) (*SkylineResult, error) {
	return d.QueryBaselineContext(context.Background(), orders...)
}

// QueryBaselineContext is QueryBaseline with cooperative cancellation
// (the same contract as QueryContext): the SDC+ traversal checks ctx
// periodically mid-run, not just before starting.
func (d *Dynamic) QueryBaselineContext(ctx context.Context, orders ...*Order) (*SkylineResult, error) {
	domains, err := d.compileQueryOrders(orders)
	if err != nil {
		return nil, err
	}
	res, err := core.DynamicSDCPlusContext(ctx, d.table.ds, domains, core.Options{})
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

func (d *Dynamic) compileQueryOrders(orders []*Order) ([]*poset.Domain, error) {
	if len(orders) != len(d.table.orders) {
		return nil, fmt.Errorf("tss: query has %d orders, table has %d PO columns",
			len(orders), len(d.table.orders))
	}
	domains := make([]*poset.Domain, len(orders))
	for i, o := range orders {
		base := d.table.orders[i]
		if len(o.labels) != len(base.labels) {
			return nil, fmt.Errorf("tss: query order %d has %d values, column expects %d",
				i, len(o.labels), len(base.labels))
		}
		for vi, l := range base.labels {
			if o.labels[vi] != l {
				return nil, fmt.Errorf("tss: query order %d value %d is %q, column expects %q",
					i, vi, o.labels[vi], l)
			}
		}
		dom, err := o.compile()
		if err != nil {
			return nil, err
		}
		domains[i] = dom
	}
	return domains, nil
}
